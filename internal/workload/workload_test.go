package workload

import (
	"strings"
	"testing"

	"lukewarm/internal/stats"
)

func TestSuiteShape(t *testing.T) {
	ws := Suite()
	if len(ws) != 20 {
		t.Fatalf("suite has %d functions, want 20", len(ws))
	}
	counts := map[Lang]int{}
	for _, w := range ws {
		counts[w.Lang]++
		wantSuffix := map[Lang]string{Python: "-P", NodeJS: "-N", Go: "-G"}[w.Lang]
		if !strings.HasSuffix(w.Name, wantSuffix) {
			t.Errorf("%s: name/language mismatch (%v)", w.Name, w.Lang)
		}
		if w.Program == nil {
			t.Errorf("%s: nil program", w.Name)
		}
		if w.App == "" {
			t.Errorf("%s: missing app attribution", w.Name)
		}
	}
	// Table 2: 5 Python, 5 NodeJS, 10 Go.
	if counts[Python] != 5 || counts[NodeJS] != 5 || counts[Go] != 10 {
		t.Errorf("language counts = %v", counts)
	}
}

func TestNamesMatchSuite(t *testing.T) {
	ws := Suite()
	ns := Names()
	if len(ns) != len(ws) {
		t.Fatalf("Names() length %d", len(ns))
	}
	for i := range ws {
		if ws[i].Name != ns[i] {
			t.Errorf("order mismatch at %d: %s vs %s", i, ws[i].Name, ns[i])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Auth-G")
	if err != nil || w.Name != "Auth-G" || w.Lang != Go {
		t.Errorf("ByName(Auth-G) = %+v, %v", w, err)
	}
	if _, err := ByName("Nope-X"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestRepresentativesExist(t *testing.T) {
	for _, name := range Representatives() {
		if _, err := ByName(name); err != nil {
			t.Errorf("representative %s: %v", name, err)
		}
	}
}

// TestFootprintCalibration checks the Fig. 6a reproduction targets: each
// function's measured per-invocation instruction footprint is within its
// band, all are inside roughly 300-800 KB, and Go < NodeJS < Python on
// average.
func TestFootprintCalibration(t *testing.T) {
	byLang := map[Lang]*stats.Summary{Python: {}, NodeJS: {}, Go: {}}
	for _, w := range Suite() {
		var s stats.Summary
		for inv := uint64(0); inv < 5; inv++ {
			fpKB := float64(len(w.Program.FootprintBlocks(inv))) * 64 / 1024
			s.Add(fpKB)
		}
		if s.Mean() < 230 || s.Mean() > 820 {
			t.Errorf("%s: mean footprint %.0fKB outside the paper's range", w.Name, s.Mean())
		}
		// Fig. 6a: "notably low variance for the vast majority".
		if cv := s.StdDev() / s.Mean(); cv > 0.15 {
			t.Errorf("%s: footprint CV %.3f too high", w.Name, cv)
		}
		byLang[w.Lang].Add(s.Mean())
	}
	if !(byLang[Go].Mean() < byLang[NodeJS].Mean() && byLang[NodeJS].Mean() < byLang[Python].Mean()) {
		t.Errorf("language ordering broken: Go=%.0f Node=%.0f Py=%.0f",
			byLang[Go].Mean(), byLang[NodeJS].Mean(), byLang[Python].Mean())
	}
}

// TestCommonalityCalibration checks the Fig. 6b targets: mean pairwise
// Jaccard > 0.9 for all but the three designated outliers, which still stay
// above ~0.75.
func TestCommonalityCalibration(t *testing.T) {
	outliers := map[string]bool{"Email-P": true, "Curr-N": true, "RecH-G": true}
	lowCount := 0
	for _, w := range Suite() {
		const n = 5
		sets := make([]map[uint64]struct{}, n)
		for i := range sets {
			sets[i] = w.Program.FootprintBlocks(uint64(i))
		}
		var s stats.Summary
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s.Add(stats.Jaccard(sets[i], sets[j]))
			}
		}
		mean := s.Mean()
		if outliers[w.Name] {
			if mean >= 0.92 {
				t.Errorf("%s: designated outlier has commonality %.3f", w.Name, mean)
			}
			if mean < 0.72 {
				t.Errorf("%s: outlier commonality %.3f below the paper's floor", w.Name, mean)
			}
			lowCount++
		} else {
			if mean < 0.87 {
				t.Errorf("%s: commonality %.3f below the >0.9 target", w.Name, mean)
			}
		}
		if s.Min() < 0.6 {
			t.Errorf("%s: pairwise minimum %.3f implausibly low", w.Name, s.Min())
		}
	}
	if lowCount != 3 {
		t.Errorf("found %d designated outliers, want 3", lowCount)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i].Program.DynamicLength(3) != b[i].Program.DynamicLength(3) {
			t.Errorf("%s: non-deterministic rebuild", a[i].Name)
		}
	}
}

func TestStressor(t *testing.T) {
	s := Stressor()
	if got := s.StaticFootprintBytes(); got < 1<<20 {
		t.Errorf("stressor footprint %d too small to thrash an LLC slice", got)
	}
	if s.DynamicLength(0) == 0 {
		t.Error("stressor produces no instructions")
	}
}

func TestLangString(t *testing.T) {
	if Python.String() != "Python" || NodeJS.String() != "NodeJS" || Go.String() != "Go" || Lang(9).String() != "Lang?" {
		t.Error("Lang strings wrong")
	}
}

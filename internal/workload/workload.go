// Package workload defines the paper's evaluation suite (Table 2): twenty
// short-running serverless functions drawn from DeathStarBench Hotel
// Reservation, Google Online Boutique, AWS authentication samples, and
// FunctionBench, implemented in Python, NodeJS, and Go.
//
// Each function is realized as a synthetic program (package program) whose
// address-stream properties are calibrated to the paper's own measurements:
//
//   - Per-invocation instruction footprints of ~300-800 KB with low variance
//     (Fig. 6a), Go functions leanest, Python largest.
//   - Cross-invocation Jaccard commonality above 0.9 for all but three
//     functions, which straddle 0.8-0.9 (Fig. 6b).
//   - The paper's observation that implementation language is the single
//     biggest determinant of runtime behavior (Sec. 5.1, footnote 4):
//     interpreters (Python) have large footprints, heavy indirect dispatch
//     and pointer chasing; JIT runtimes (NodeJS) sit in between; compiled Go
//     is leanest and most predictable.
package workload

import (
	"lukewarm/internal/cfgerr"
	"lukewarm/internal/program"
)

// Lang is the implementation language of a function (Table 2's legend).
type Lang uint8

// Languages of the suite.
const (
	Python Lang = iota
	NodeJS
	Go
)

// String implements fmt.Stringer using the paper's abbreviations.
func (l Lang) String() string {
	switch l {
	case Python:
		return "Python"
	case NodeJS:
		return "NodeJS"
	case Go:
		return "Go"
	}
	return "Lang?"
}

// Workload is one function of the suite.
type Workload struct {
	// Name is the paper's abbreviation (e.g. "Auth-P", "Ship-G").
	Name string
	// App is the source application (Hotel Reservation, Online Boutique...).
	App string
	// Lang is the implementation language.
	Lang Lang
	// Program is the synthetic function realizing the workload.
	Program *program.Program
}

// spec is the calibration record a workload is built from.
type spec struct {
	name      string
	app       string
	lang      Lang
	codeKB    int
	dynMul    float64 // dynamic instructions per code KB, relative to base
	dataKB    int
	hotKB     int
	lowCommon bool // one of the three Fig. 6b outliers
}

// specs lists the suite in the paper's figure order.
var specs = []spec{
	{"Fib-P", "FunctionBench", Python, 580, 1.4, 96, 16, false},
	{"AES-P", "FunctionBench", Python, 620, 1.5, 160, 24, false},
	{"Auth-P", "AWS Auth", Python, 700, 1.0, 144, 24, false},
	{"Email-P", "Online Boutique", Python, 760, 1.0, 192, 24, true},
	{"RecO-P", "Online Boutique", Python, 650, 1.0, 176, 24, false},
	{"Fib-N", "FunctionBench", NodeJS, 460, 1.4, 112, 16, false},
	{"AES-N", "FunctionBench", NodeJS, 500, 1.5, 176, 24, false},
	{"Auth-N", "AWS Auth", NodeJS, 560, 1.0, 144, 24, false},
	{"Curr-N", "Online Boutique", NodeJS, 620, 1.0, 160, 24, true},
	{"Pay-N", "Online Boutique", NodeJS, 700, 1.0, 208, 32, false},
	{"Fib-G", "FunctionBench", Go, 300, 1.4, 80, 16, false},
	{"AES-G", "FunctionBench", Go, 330, 1.5, 144, 24, false},
	{"Auth-G", "AWS Auth", Go, 360, 1.0, 112, 16, false},
	{"Geo-G", "Hotel Reservation", Go, 420, 1.0, 160, 24, false},
	{"ProdL-G", "Online Boutique", Go, 330, 1.0, 128, 16, false},
	{"Prof-G", "Hotel Reservation", Go, 450, 1.0, 176, 24, false},
	{"Rate-G", "Hotel Reservation", Go, 390, 1.0, 144, 16, false},
	{"RecH-G", "Hotel Reservation", Go, 520, 1.0, 160, 24, true},
	{"User-G", "Hotel Reservation", Go, 360, 1.0, 112, 16, false},
	{"Ship-G", "Online Boutique", Go, 440, 1.0, 144, 16, false},
}

// dynPerKB converts code footprint to dynamic length: roughly 70 dynamic
// instructions per footprint cache line (short handlers re-touch their code
// a few dozen times per invocation, spread across the whole footprint).
const dynPerKB = 1100

// build constructs the program for one spec.
func build(s spec) *program.Program {
	cfg := program.Config{
		Name:          s.name,
		Seed:          program.Mix(0x570C4A57, hashName(s.name)),
		CodeKB:        s.codeKB,
		DynamicInstrs: int(float64(s.codeKB*dynPerKB) * s.dynMul),
		InstrPerLine:  16,
		DataKB:        s.dataKB,
		HotDataKB:     s.hotKB,
		HotDataFrac:   0.68,
		ColdDataFrac:  0.05,
		CondFrac:      0.30,
		CondBias:      0.90,
		NoisyFrac:     0.025,
	}
	switch s.lang {
	case Python:
		cfg.CoreFrac = 0.78
		cfg.OptionalProb = 0.75
		cfg.RareFrac = 0.05
		cfg.RareProb = 0.04
		cfg.LoadFrac = 0.27
		cfg.StoreFrac = 0.10
		cfg.IndirectFrac = 0.35
		cfg.CallFrac = 0.65
		cfg.SkipFrac = 0.05
		cfg.DepLoadFrac = 0.30
		cfg.KernelFrac = 0.12
	case NodeJS:
		cfg.CoreFrac = 0.76
		cfg.OptionalProb = 0.72
		cfg.RareFrac = 0.05
		cfg.RareProb = 0.05
		cfg.LoadFrac = 0.25
		cfg.StoreFrac = 0.10
		cfg.IndirectFrac = 0.25
		cfg.CallFrac = 0.48
		cfg.SkipFrac = 0.06
		cfg.DepLoadFrac = 0.25
		cfg.KernelFrac = 0.12
	case Go:
		cfg.CoreFrac = 0.85
		cfg.OptionalProb = 0.75
		cfg.RareFrac = 0.04
		cfg.RareProb = 0.04
		cfg.LoadFrac = 0.24
		cfg.StoreFrac = 0.09
		cfg.IndirectFrac = 0.12
		cfg.CallFrac = 0.35
		cfg.SkipFrac = 0.04
		cfg.DepLoadFrac = 0.15
		cfg.KernelFrac = 0.15
	}
	if s.lowCommon {
		// The Fig. 6b outliers: more per-invocation variation.
		cfg.CoreFrac -= 0.17
		cfg.OptionalProb -= 0.12
		cfg.RareFrac += 0.03
	}
	return program.New(cfg)
}

// hashName derives a stable per-function seed component.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Suite builds the full 20-function suite in the paper's figure order.
// Programs are constructed deterministically; calling Suite twice yields
// behaviorally identical workloads.
func Suite() []Workload {
	ws := make([]Workload, len(specs))
	for i, s := range specs {
		ws[i] = Workload{Name: s.name, App: s.app, Lang: s.lang, Program: build(s)}
	}
	return ws
}

// Names lists the suite's function names in figure order.
func Names() []string {
	ns := make([]string, len(specs))
	for i, s := range specs {
		ns[i] = s.name
	}
	return ns
}

// ByName builds the named workload, or an error listing valid names.
func ByName(name string) (Workload, error) {
	for _, s := range specs {
		if s.name == name {
			return Workload{Name: s.name, App: s.app, Lang: s.lang, Program: build(s)}, nil
		}
	}
	return Workload{}, cfgerr.New("workload: unknown function %q (see workload.Names)", name)
}

// Representatives returns the per-language representatives the paper plots
// in Figs. 9 and 13: Email-P, Pay-N, ProdL-G.
func Representatives() []string { return []string{"Email-P", "Pay-N", "ProdL-G"} }

// WithChurnSlide returns a copy of w whose program's churned-heap window
// slides by kb KB per invocation instead of flipping between two whole
// generations (program.Config.ChurnSlideKB). A gradual slide makes a frozen
// page manifest go stale monotonically with age — the axis the REAP
// staleness sweep measures. The canonical suite keeps the default.
func WithChurnSlide(w Workload, kb int) Workload {
	cfg := w.Program.Config()
	cfg.ChurnSlideKB = kb
	w.Program = program.New(cfg)
	return w
}

// Stressor builds the cache/BTB/TLB-thrashing program standing in for
// stress-ng (Sec. 2.3): a large-footprint streaming workload whose execution
// on the same core obliterates the function's microarchitectural state.
func Stressor() *program.Program {
	return program.New(program.Config{
		Name:          "stress-ng",
		Seed:          0x57E55,
		CodeKB:        2048,
		DynamicInstrs: 2048 * 40,
		CoreFrac:      0.95,
		OptionalProb:  0.5,
		RareFrac:      0.02,
		RareProb:      0.05,
		InstrPerLine:  16,
		LoadFrac:      0.30,
		StoreFrac:     0.15,
		CondFrac:      0.2,
		CondBias:      0.9,
		NoisyFrac:     0.02,
		IndirectFrac:  0.1,
		CallFrac:      0.2,
		SkipFrac:      0.02,
		DataKB:        8192,
		HotDataKB:     4096,
		HotDataFrac:   0.3,
		ColdDataFrac:  0.6,
		DepLoadFrac:   0.1,
		KernelFrac:    0.05,
	})
}

package workload

import (
	"testing"
)

// TestPerFunctionCalibrationDetail pins each function's construction-level
// properties: configured footprint realized by the layout, dynamic length
// within the configured band, and language profile knobs actually applied.
func TestPerFunctionCalibrationDetail(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := w.Program.Config()
			if got := w.Program.StaticFootprintBytes(); got != cfg.CodeKB<<10 {
				t.Errorf("static footprint %d != configured %d", got, cfg.CodeKB<<10)
			}
			n := w.Program.DynamicLength(0)
			// Padding targets the configured length with small per-draw
			// slack (optional-segment estimates are approximate).
			if n < uint64(float64(cfg.DynamicInstrs)*0.95) {
				t.Errorf("dynamic length %d below configured %d", n, cfg.DynamicInstrs)
			}
			if n > uint64(cfg.DynamicInstrs)*2 {
				t.Errorf("dynamic length %d more than 2x configured %d", n, cfg.DynamicInstrs)
			}
			// Language profiles: the paper's qualitative ordering.
			switch w.Lang {
			case Python:
				if cfg.IndirectFrac < 0.3 {
					t.Errorf("Python needs heavy indirect dispatch, got %v", cfg.IndirectFrac)
				}
				if cfg.DepLoadFrac < 0.25 {
					t.Errorf("Python needs heavy pointer chasing, got %v", cfg.DepLoadFrac)
				}
			case Go:
				if cfg.IndirectFrac > 0.2 {
					t.Errorf("Go should have light indirect dispatch, got %v", cfg.IndirectFrac)
				}
			}
			if cfg.CodeKB < 280 || cfg.CodeKB > 800 {
				t.Errorf("footprint %dKB outside the paper's range", cfg.CodeKB)
			}
		})
	}
}

// TestDynamicLengthVariance: invocation lengths vary (optional segments)
// but stay within a narrow band — the paper's functions have stable
// durations once JIT-warm.
func TestDynamicLengthVariance(t *testing.T) {
	for _, name := range []string{"Auth-G", "Email-P", "Pay-N"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var lo, hi uint64
		for id := uint64(0); id < 6; id++ {
			n := w.Program.DynamicLength(id)
			if lo == 0 || n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if float64(hi)/float64(lo) > 1.25 {
			t.Errorf("%s: invocation lengths vary %d..%d (>25%%)", name, lo, hi)
		}
	}
}

// TestSeedsDistinct: every function gets a distinct layout even when
// configured similarly.
func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, w := range Suite() {
		seed := w.Program.Config().Seed
		if prev, dup := seen[seed]; dup {
			t.Errorf("%s and %s share seed %d", w.Name, prev, seed)
		}
		seen[seed] = w.Name
	}
}

// TestStressorDistinctFromSuite: the stressor must not alias any suite
// function's behavior (it is a pure thrasher).
func TestStressorDistinctFromSuite(t *testing.T) {
	s := Stressor()
	if s.Config().DataKB < 4096 {
		t.Errorf("stressor data set %dKB too small to thrash an LLC", s.Config().DataKB)
	}
	var suiteMax int
	for _, w := range Suite() {
		if kb := w.Program.Config().CodeKB; kb > suiteMax {
			suiteMax = kb
		}
	}
	if s.Config().CodeKB <= suiteMax {
		t.Errorf("stressor code %dKB not above the largest function %dKB", s.Config().CodeKB, suiteMax)
	}
}

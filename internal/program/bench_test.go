package program

import "testing"

func benchProgram() *Program {
	return New(Config{
		Name: "bench-fn", Seed: 7, CodeKB: 400, DynamicInstrs: 300_000,
		CoreFrac: 0.8, OptionalProb: 0.7, RareFrac: 0.05, RareProb: 0.05,
		InstrPerLine: 16, LoadFrac: 0.25, StoreFrac: 0.1,
		CondFrac: 0.3, CondBias: 0.9, NoisyFrac: 0.03,
		IndirectFrac: 0.2, CallFrac: 0.4, SkipFrac: 0.05,
		DataKB: 160, HotDataKB: 24, HotDataFrac: 0.7, ColdDataFrac: 0.05,
		DepLoadFrac: 0.2, KernelFrac: 0.12,
	})
}

func BenchmarkProgramConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchProgram()
	}
}

func BenchmarkWalkerNext(b *testing.B) {
	p := benchProgram()
	inv := p.NewInvocation(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := inv.Next(); !ok {
			inv = p.NewInvocation(uint64(i))
		}
	}
}

func BenchmarkFootprintBlocks(b *testing.B) {
	p := benchProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.FootprintBlocks(uint64(i))) == 0 {
			b.Fatal("empty footprint")
		}
	}
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

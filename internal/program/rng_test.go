package program

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first value")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d values", len(seen))
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { r.Intn(0) },
		func() { r.Intn(-1) },
		func() { r.Range(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRNGRangeInclusive(t *testing.T) {
	r := NewRNG(3)
	sawLo, sawHi := false, false
	for i := 0; i < 2000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		sawLo = sawLo || v == 2
		sawHi = sawHi || v == 5
	}
	if !sawLo || !sawHi {
		t.Error("Range endpoints never produced")
	}
	if got := r.Range(7, 7); got != 7 {
		t.Errorf("degenerate Range = %d", got)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	n := 20_000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) rate = %v", frac)
	}
}

func TestMixProperties(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix is symmetric; seed streams would collide")
	}
	if Mix(0, 0) == 0 {
		t.Error("Mix(0,0) is zero")
	}
	f := func(a, b uint64) bool { return Mix(a, b) != 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformityCoarse(t *testing.T) {
	// Chi-squared-ish sanity: 16 buckets should each hold ~1/16.
	r := NewRNG(99)
	var buckets [16]int
	n := 64_000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	for i, c := range buckets {
		frac := float64(c) / float64(n)
		if frac < 0.045 || frac > 0.08 {
			t.Errorf("bucket %d fraction %v", i, frac)
		}
	}
}

package program

// Invocation is one deterministic walk of a program's template: the dynamic
// instruction stream the core model consumes. The same (program, invocation
// id) pair always yields the identical stream, which lets the footprint
// analyses and the timing runs see exactly the same execution.
//
// The walk delivers code lines from the invocation's segment plan; lines
// with call-outs detour through their helper routine before the walk
// continues, interleaving distant code regions in the fetch stream exactly
// the way real call-heavy runtime code does.
type Invocation struct {
	p    *Program
	rng  RNG
	id   uint64
	plan []int // sequence of segment indices

	// normal-path cursor
	step int // index into plan
	line int // line within current segment
	// call-out state
	inCall   bool
	callNext int // absolute index of the next callee line
	callRem  int

	// one-line lookahead: cur is the line being emitted, next follows it.
	cur, next int
	haveNext  bool
	instr     int // instruction index within cur

	emitted  uint64
	coldPtr  uint64
	prevLoad bool
	done     bool
}

// NewInvocation creates the walker for invocation id. Ids are arbitrary;
// distinct ids differ in optional-segment inclusion and data access streams.
func (p *Program) NewInvocation(id uint64) *Invocation {
	inv := &Invocation{}
	p.ResetInvocation(inv, id)
	return inv
}

// ResetInvocation reinitializes inv as invocation id of p, reusing inv's
// plan storage. The resulting walker is indistinguishable from a fresh
// NewInvocation — the server's dispatch path uses it to serve every
// invocation of an instance from one pooled walker with no steady-state
// allocation.
//lukewarm:hotpath noalloc the dispatch path pools walkers; a per-invocation allocation here multiplies across the fleet
func (p *Program) ResetInvocation(inv *Invocation, id uint64) {
	plan := inv.plan[:0]
	*inv = Invocation{p: p, id: id, rng: *NewRNG(Mix(p.cfg.Seed, Mix(0x1907, id)))}
	inv.plan = p.buildPlanInto(plan, &inv.rng)
	cur, ok := inv.advanceLine()
	if !ok {
		inv.done = true
		return
	}
	inv.cur = cur
	inv.next, inv.haveNext = inv.advanceLine()
}

// buildPlanInto selects the segments this invocation executes, in template
// order, interleaved with dispatcher re-entries, padded with loop-segment
// iterations toward the configured dynamic length. The plan is appended to
// plan's storage (pass plan[:0] to reuse an existing buffer).
func (p *Program) buildPlanInto(plan []int, rng *RNG) []int {
	per := float64(p.cfg.InstrPerLine)
	expand := p.callExpansion()
	est := 0.0
	//lukewarm:hothygiene the closure never escapes buildPlanInto, so it and its captures stay on the stack (perfgate-verified)
	add := func(si int) {
		plan = append(plan, si) //lukewarm:hotalloc the plan buffer is pooled per walker and grows to its high-water mark once
		mul := expand
		if si == p.dispatch {
			mul = 1 // the dispatcher has no call-outs
		}
		est += float64(p.segments[si].numLines) * per * mul
	}

	add(p.dispatch)
	for si := range p.segments {
		s := &p.segments[si]
		if si == p.dispatch {
			continue
		}
		include := false
		switch s.class {
		case segCore:
			include = true
		case segOptional, segRare:
			include = rng.Bool(s.prob)
		}
		if !include {
			continue
		}
		add(si)
		if rng.Bool(0.25) {
			add(p.dispatch)
		}
	}

	// Pad with loop-segment iterations (the handler's compute kernels)
	// until the dynamic-length target is met.
	loops := p.loopSegs
	// Bias slightly above the target: the call-expansion estimate is an
	// upper bound (some call draws fail), so undershoot would otherwise be
	// systematic.
	target := float64(p.cfg.DynamicInstrs) * 1.04
	for len(loops) > 0 && est < target {
		for _, si := range loops {
			add(si)
			if est >= target {
				break
			}
			if rng.Bool(0.15) {
				add(p.dispatch)
			}
		}
	}
	return plan
}

// advanceLine yields the next absolute code-line index of the walk,
// handling call-out detours. Callee lines do not themselves call (no
// nesting).
func (inv *Invocation) advanceLine() (int, bool) {
	if inv.inCall {
		if inv.callRem > 0 {
			l := inv.callNext
			inv.callNext++
			inv.callRem--
			return l, true
		}
		inv.inCall = false
	}
	if inv.step >= len(inv.plan) {
		return 0, false
	}
	s := &inv.p.segments[inv.plan[inv.step]]
	abs := s.firstLine + inv.line
	inv.line++
	if inv.line >= s.numLines {
		inv.line = 0
		inv.step++
	}
	if t := inv.p.callTarget[abs]; t >= 0 {
		inv.inCall = true
		inv.callNext = int(t)
		inv.callRem = int(inv.p.callLen[abs])
	}
	return abs, true
}

// Emitted reports the number of instructions produced so far.
func (inv *Invocation) Emitted() uint64 { return inv.emitted }

// NextBatch fills buf with the next instructions of the stream and returns
// how many were produced; 0 means the stream has ended. The stream is
// exactly the one repeated Next calls yield — same instructions, same RNG
// consumption — so the core's batched fast path is bit-identical to the
// per-instruction one (internal/check's differential tests enforce this).
//
// The body inlines Next's common case — a non-terminal instruction of the
// current code line, which needs no control-transfer decision — and falls
// back to Next itself for line-terminal instructions, so the two paths
// share the control-transfer logic rather than duplicating it.
//lukewarm:hotpath noalloc,noescape the batched generator feeds the core's fetch loop; PR 9's 1.3x lives here
func (inv *Invocation) NextBatch(buf []Instr) int {
	p := inv.p
	last := p.cfg.InstrPerLine - 1
	stride := p.der.stride
	n := 0
	for n < len(buf) && !inv.done {
		if inv.instr != last {
			in := &buf[n]
			*in = Instr{VAddr: p.lineAddr[inv.cur] + uint64(inv.instr)*stride}
			inv.emitted++
			inv.emitOp(in)
			inv.instr++
			n++
			continue
		}
		in, ok := inv.Next()
		if !ok {
			break
		}
		buf[n] = in
		n++
	}
	return n
}

// Next produces the next dynamic instruction; ok is false at stream end.
//lukewarm:hotpath noalloc,noescape the per-instruction generator; the Instr result must stay in registers
func (inv *Invocation) Next() (in Instr, ok bool) {
	if inv.done {
		return Instr{}, false
	}
	cfg := &inv.p.cfg
	lineAddr := inv.p.lineAddr[inv.cur]
	in.VAddr = lineAddr + uint64(inv.instr)*inv.p.der.stride
	inv.emitted++

	if inv.instr != cfg.InstrPerLine-1 {
		inv.emitOp(&in)
		inv.instr++
		return in, true
	}

	// Last instruction of the line: control transfer decision.
	switch {
	case !inv.haveNext:
		// Final instruction of the invocation: a return to the runtime.
		in.Op = OpBranch
		in.Taken = true
		in.Target = inv.p.lineAddr[inv.p.segments[inv.p.dispatch].firstLine]
		inv.done = true
		return in, true
	default:
		nextAddr := inv.p.lineAddr[inv.next]
		if nextAddr != lineAddr+lineSize {
			// Non-sequential transfer: call, return, jump, or loop edge.
			in.Op = OpBranch
			in.Taken = true
			in.Target = nextAddr
			// Dispatch-style transfers (to a segment entry point) may be
			// indirect: interpreter/JIT dispatch tables.
			if inv.p.segStart[inv.next] {
				in.Indirect = inv.rng.Bool(cfg.IndirectFrac)
			}
		} else if inv.rng.Bool(cfg.SkipFrac) {
			// Taken conditional jumping over the next line: per-invocation
			// control-flow divergence at block granularity.
			in.Op = OpBranch
			in.Cond = true
			in.Taken = true
			inv.next, inv.haveNext = inv.advanceLine() // skip one line
			if inv.haveNext {
				in.Target = inv.p.lineAddr[inv.next]
			} else {
				in.Target = inv.p.lineAddr[inv.p.segments[inv.p.dispatch].firstLine]
				inv.done = true
				return in, true
			}
		} else if inv.rng.Bool(cfg.NoisyFrac) {
			// Data-dependent 50/50 conditional: the bad-speculation
			// source. Both outcomes continue at the sequential next line
			// (the taken path targets the if-body starting there).
			in.Op = OpBranch
			in.Cond = true
			in.Taken = inv.rng.Bool(0.5)
			in.Target = nextAddr
		} else if inv.rng.Bool(cfg.CondFrac) {
			// Biased, learnable conditional.
			in.Op = OpBranch
			in.Cond = true
			in.Taken = inv.rng.Bool(inv.p.der.condTaken)
			in.Target = nextAddr
		} else {
			inv.emitOp(&in)
		}
	}

	// Advance the lookahead window.
	inv.instr = 0
	inv.cur = inv.next
	inv.next, inv.haveNext = inv.advanceLine()
	return in, true
}

// emitOp fills in a non-control instruction: plain, load, or store, with a
// generated effective address.
//lukewarm:hotpath noalloc,noescape,nobce runs once per generated instruction; threshold compares only
func (inv *Invocation) emitOp(in *Instr) {
	der := &inv.p.der
	u := inv.rng.Uint64() >> 11
	switch {
	case u < der.thrLoad:
		in.Op = OpLoad
		in.MemAddr = inv.dataAddr()
		if inv.prevLoad && inv.rng.Uint64()>>11 < der.thrDepLoad {
			in.DepLoad = true
		}
		inv.prevLoad = true
		return
	case u < der.thrLoadStore:
		in.Op = OpStore
		in.MemAddr = inv.dataAddr()
	default:
		in.Op = OpPlain
	}
	inv.prevLoad = false
}

// coldRegionBytes bounds the per-invocation streaming region (request
// payload buffers), reused across invocations.
const coldRegionBytes = 256 << 10

// dataAddr generates one effective address from the hot/warm/cold mix.
//
// The hot subset (runtime state) and half of the warm set (long-lived
// objects, caches, connection state) persist across invocations; the other
// warm half (per-request heap allocations, churned by the allocator/GC
// between requests) and the cold streaming region (request payload buffers)
// alternate between two generations per invocation. The data footprint thus
// has markedly lower cross-invocation commonality than the instruction
// footprint — which is precisely why the paper targets instructions
// (Sec. 2.5), and why indiscriminate whole-LLC restoration wastes bandwidth
// on stale data.
//lukewarm:hotpath noalloc,noescape,nobce one effective address per load/store; the magic-divider mods must not spill
func (inv *Invocation) dataAddr() uint64 {
	cfg := &inv.p.cfg
	gen := inv.id & 1
	u := inv.rng.Uint64() >> 11
	switch {
	case u < inv.p.der.thrHot:
		return heapBase + inv.p.der.hotDiv.mod(inv.rng.Uint64())&^7
	case u < inv.p.der.thrHotCold:
		inv.coldPtr += lineSize
		if inv.coldPtr >= coldRegionBytes {
			inv.coldPtr = 0
		}
		if cfg.ChurnSlideKB > 0 {
			// Payload buffers drift through their arena at the same rate
			// as the churned heap (see the warm-half comment below).
			slide := uint64(cfg.ChurnSlideKB) << 10
			return coldBase + (inv.id*slide+inv.coldPtr)%(2*coldRegionBytes)
		}
		return coldBase + gen*coldRegionBytes + inv.coldPtr
	default:
		der := &inv.p.der
		lo := der.warmLo
		half := der.warmHalf
		off := der.warmDiv.mod(inv.rng.Uint64()) &^ 7
		if inv.rng.Uint64()>>11 < der.thrHalf {
			// Persistent warm half.
			return heapBase + lo + off
		}
		// Churned warm half: the allocator's bump pointer slides a live
		// window of `half` bytes through a two-generation arena each
		// invocation. The default slide of one full window reproduces the
		// two alternating generations; a smaller ChurnSlideKB drifts the
		// window gradually, so a frozen snapshot of one invocation's pages
		// goes stale monotonically with age.
		slide := half
		if cfg.ChurnSlideKB > 0 {
			slide = uint64(cfg.ChurnSlideKB) << 10
		}
		return heapBase + lo + half + der.warm2Div.mod(inv.id*slide+off)
	}
}

// FootprintBlocks walks invocation id and returns the set of unique 64 B
// instruction blocks it touches — the paper's Fig. 6a metric.
func (p *Program) FootprintBlocks(id uint64) map[uint64]struct{} {
	set := make(map[uint64]struct{}, p.CodeLines())
	inv := p.NewInvocation(id)
	for {
		in, ok := inv.Next()
		if !ok {
			return set
		}
		set[in.VAddr&^uint64(lineSize-1)] = struct{}{}
	}
}

// DynamicLength walks invocation id and returns its dynamic instruction
// count.
func (p *Program) DynamicLength(id uint64) uint64 {
	inv := p.NewInvocation(id)
	for {
		if _, ok := inv.Next(); !ok {
			return inv.Emitted()
		}
	}
}

package program

// Invocation is one deterministic walk of a program's template: the dynamic
// instruction stream the core model consumes. The same (program, invocation
// id) pair always yields the identical stream, which lets the footprint
// analyses and the timing runs see exactly the same execution.
//
// The walk delivers code lines from the invocation's segment plan; lines
// with call-outs detour through their helper routine before the walk
// continues, interleaving distant code regions in the fetch stream exactly
// the way real call-heavy runtime code does.
type Invocation struct {
	p    *Program
	rng  *RNG
	id   uint64
	plan []int // sequence of segment indices

	// normal-path cursor
	step int // index into plan
	line int // line within current segment
	// call-out state
	inCall   bool
	callNext int // absolute index of the next callee line
	callRem  int

	// one-line lookahead: cur is the line being emitted, next follows it.
	cur, next int
	haveNext  bool
	instr     int // instruction index within cur

	emitted  uint64
	coldPtr  uint64
	prevLoad bool
	done     bool
}

// NewInvocation creates the walker for invocation id. Ids are arbitrary;
// distinct ids differ in optional-segment inclusion and data access streams.
func (p *Program) NewInvocation(id uint64) *Invocation {
	rng := NewRNG(Mix(p.cfg.Seed, Mix(0x1907, id)))
	inv := &Invocation{p: p, rng: rng, id: id, plan: p.buildPlan(rng)}
	cur, ok := inv.advanceLine()
	if !ok {
		inv.done = true
		return inv
	}
	inv.cur = cur
	inv.next, inv.haveNext = inv.advanceLine()
	return inv
}

// buildPlan selects the segments this invocation executes, in template
// order, interleaved with dispatcher re-entries, padded with loop-segment
// iterations toward the configured dynamic length.
func (p *Program) buildPlan(rng *RNG) []int {
	per := float64(p.cfg.InstrPerLine)
	expand := p.callExpansion()
	plan := make([]int, 0, len(p.segments)*2)
	est := 0.0
	add := func(si int) {
		plan = append(plan, si)
		mul := expand
		if si == p.dispatch {
			mul = 1 // the dispatcher has no call-outs
		}
		est += float64(p.segments[si].numLines) * per * mul
	}

	add(p.dispatch)
	for si := range p.segments {
		s := &p.segments[si]
		if si == p.dispatch {
			continue
		}
		include := false
		switch s.class {
		case segCore:
			include = true
		case segOptional, segRare:
			include = rng.Bool(s.prob)
		}
		if !include {
			continue
		}
		add(si)
		if rng.Bool(0.25) {
			add(p.dispatch)
		}
	}

	// Pad with loop-segment iterations (the handler's compute kernels)
	// until the dynamic-length target is met.
	var loops []int
	for si := range p.segments {
		if p.segments[si].loop {
			loops = append(loops, si)
		}
	}
	// Bias slightly above the target: the call-expansion estimate is an
	// upper bound (some call draws fail), so undershoot would otherwise be
	// systematic.
	target := float64(p.cfg.DynamicInstrs) * 1.04
	for len(loops) > 0 && est < target {
		for _, si := range loops {
			add(si)
			if est >= target {
				break
			}
			if rng.Bool(0.15) {
				add(p.dispatch)
			}
		}
	}
	return plan
}

// advanceLine yields the next absolute code-line index of the walk,
// handling call-out detours. Callee lines do not themselves call (no
// nesting).
func (inv *Invocation) advanceLine() (int, bool) {
	if inv.inCall {
		if inv.callRem > 0 {
			l := inv.callNext
			inv.callNext++
			inv.callRem--
			return l, true
		}
		inv.inCall = false
	}
	if inv.step >= len(inv.plan) {
		return 0, false
	}
	s := &inv.p.segments[inv.plan[inv.step]]
	abs := s.firstLine + inv.line
	inv.line++
	if inv.line >= s.numLines {
		inv.line = 0
		inv.step++
	}
	if t := inv.p.callTarget[abs]; t >= 0 {
		inv.inCall = true
		inv.callNext = int(t)
		inv.callRem = int(inv.p.callLen[abs])
	}
	return abs, true
}

// Emitted reports the number of instructions produced so far.
func (inv *Invocation) Emitted() uint64 { return inv.emitted }

// Next produces the next dynamic instruction; ok is false at stream end.
func (inv *Invocation) Next() (in Instr, ok bool) {
	if inv.done {
		return Instr{}, false
	}
	cfg := &inv.p.cfg
	lineAddr := inv.p.lineAddr[inv.cur]
	stride := uint64(lineSize / cfg.InstrPerLine)
	in.VAddr = lineAddr + uint64(inv.instr)*stride
	inv.emitted++

	if inv.instr != cfg.InstrPerLine-1 {
		inv.emitOp(&in)
		inv.instr++
		return in, true
	}

	// Last instruction of the line: control transfer decision.
	switch {
	case !inv.haveNext:
		// Final instruction of the invocation: a return to the runtime.
		in.Op = OpBranch
		in.Taken = true
		in.Target = inv.p.lineAddr[inv.p.segments[inv.p.dispatch].firstLine]
		inv.done = true
		return in, true
	default:
		nextAddr := inv.p.lineAddr[inv.next]
		if nextAddr != lineAddr+lineSize {
			// Non-sequential transfer: call, return, jump, or loop edge.
			in.Op = OpBranch
			in.Taken = true
			in.Target = nextAddr
			// Dispatch-style transfers (to a segment entry point) may be
			// indirect: interpreter/JIT dispatch tables.
			if inv.p.segStart[inv.next] {
				in.Indirect = inv.rng.Bool(cfg.IndirectFrac)
			}
		} else if inv.rng.Bool(cfg.SkipFrac) {
			// Taken conditional jumping over the next line: per-invocation
			// control-flow divergence at block granularity.
			in.Op = OpBranch
			in.Cond = true
			in.Taken = true
			inv.next, inv.haveNext = inv.advanceLine() // skip one line
			if inv.haveNext {
				in.Target = inv.p.lineAddr[inv.next]
			} else {
				in.Target = inv.p.lineAddr[inv.p.segments[inv.p.dispatch].firstLine]
				inv.done = true
				return in, true
			}
		} else if inv.rng.Bool(cfg.NoisyFrac) {
			// Data-dependent 50/50 conditional: the bad-speculation
			// source. Both outcomes continue at the sequential next line
			// (the taken path targets the if-body starting there).
			in.Op = OpBranch
			in.Cond = true
			in.Taken = inv.rng.Bool(0.5)
			in.Target = nextAddr
		} else if inv.rng.Bool(cfg.CondFrac) {
			// Biased, learnable conditional.
			in.Op = OpBranch
			in.Cond = true
			in.Taken = inv.rng.Bool(1 - cfg.CondBias)
			in.Target = nextAddr
		} else {
			inv.emitOp(&in)
		}
	}

	// Advance the lookahead window.
	inv.instr = 0
	inv.cur = inv.next
	inv.next, inv.haveNext = inv.advanceLine()
	return in, true
}

// emitOp fills in a non-control instruction: plain, load, or store, with a
// generated effective address.
func (inv *Invocation) emitOp(in *Instr) {
	cfg := &inv.p.cfg
	r := inv.rng.Float64()
	switch {
	case r < cfg.LoadFrac:
		in.Op = OpLoad
		in.MemAddr = inv.dataAddr()
		if inv.prevLoad && inv.rng.Bool(cfg.DepLoadFrac) {
			in.DepLoad = true
		}
		inv.prevLoad = true
		return
	case r < cfg.LoadFrac+cfg.StoreFrac:
		in.Op = OpStore
		in.MemAddr = inv.dataAddr()
	default:
		in.Op = OpPlain
	}
	inv.prevLoad = false
}

// coldRegionBytes bounds the per-invocation streaming region (request
// payload buffers), reused across invocations.
const coldRegionBytes = 256 << 10

// dataAddr generates one effective address from the hot/warm/cold mix.
//
// The hot subset (runtime state) and half of the warm set (long-lived
// objects, caches, connection state) persist across invocations; the other
// warm half (per-request heap allocations, churned by the allocator/GC
// between requests) and the cold streaming region (request payload buffers)
// alternate between two generations per invocation. The data footprint thus
// has markedly lower cross-invocation commonality than the instruction
// footprint — which is precisely why the paper targets instructions
// (Sec. 2.5), and why indiscriminate whole-LLC restoration wastes bandwidth
// on stale data.
func (inv *Invocation) dataAddr() uint64 {
	cfg := &inv.p.cfg
	gen := inv.id & 1
	r := inv.rng.Float64()
	switch {
	case r < cfg.HotDataFrac:
		span := cfg.HotDataKB << 10
		return heapBase + uint64(inv.rng.Intn(span))&^7
	case r < cfg.HotDataFrac+cfg.ColdDataFrac:
		inv.coldPtr += lineSize
		if inv.coldPtr >= coldRegionBytes {
			inv.coldPtr = 0
		}
		if cfg.ChurnSlideKB > 0 {
			// Payload buffers drift through their arena at the same rate
			// as the churned heap (see the warm-half comment below).
			slide := uint64(cfg.ChurnSlideKB) << 10
			return coldBase + (inv.id*slide+inv.coldPtr)%(2*coldRegionBytes)
		}
		return coldBase + gen*coldRegionBytes + inv.coldPtr
	default:
		lo := uint64(cfg.HotDataKB << 10)
		hi := uint64(cfg.DataKB << 10)
		if hi <= lo {
			hi = lo + 16
		}
		half := (hi - lo) / 2
		off := uint64(inv.rng.Intn(int(half))) &^ 7
		if inv.rng.Bool(0.5) {
			// Persistent warm half.
			return heapBase + lo + off
		}
		// Churned warm half: the allocator's bump pointer slides a live
		// window of `half` bytes through a two-generation arena each
		// invocation. The default slide of one full window reproduces the
		// two alternating generations; a smaller ChurnSlideKB drifts the
		// window gradually, so a frozen snapshot of one invocation's pages
		// goes stale monotonically with age.
		slide := half
		if cfg.ChurnSlideKB > 0 {
			slide = uint64(cfg.ChurnSlideKB) << 10
		}
		return heapBase + lo + half + (inv.id*slide+off)%(2*half)
	}
}

// FootprintBlocks walks invocation id and returns the set of unique 64 B
// instruction blocks it touches — the paper's Fig. 6a metric.
func (p *Program) FootprintBlocks(id uint64) map[uint64]struct{} {
	set := make(map[uint64]struct{}, p.CodeLines())
	inv := p.NewInvocation(id)
	for {
		in, ok := inv.Next()
		if !ok {
			return set
		}
		set[in.VAddr&^uint64(lineSize-1)] = struct{}{}
	}
}

// DynamicLength walks invocation id and returns its dynamic instruction
// count.
func (p *Program) DynamicLength(id uint64) uint64 {
	inv := p.NewInvocation(id)
	for {
		if _, ok := inv.Next(); !ok {
			return inv.Emitted()
		}
	}
}

package program

import (
	"testing"

	"lukewarm/internal/stats"
)

// testConfig returns a mid-size function resembling a Go workload.
func testConfig() Config {
	return Config{
		Name:          "test-fn",
		Seed:          1234,
		CodeKB:        400,
		DynamicInstrs: 200_000,
		CoreFrac:      0.8,
		OptionalProb:  0.7,
		RareFrac:      0.05,
		RareProb:      0.05,
		InstrPerLine:  16,
		LoadFrac:      0.25,
		StoreFrac:     0.10,
		CondFrac:      0.30,
		CondBias:      0.9,
		NoisyFrac:     0.03,
		IndirectFrac:  0.2,
		CallFrac:      0.35,
		DataKB:        192,
		HotDataKB:     24,
		HotDataFrac:   0.7,
		ColdDataFrac:  0.05,
		DepLoadFrac:   0.2,
		KernelFrac:    0.15,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.CodeKB = 1 },
		func(c *Config) { c.InstrPerLine = 0 },
		func(c *Config) { c.InstrPerLine = 100 },
		func(c *Config) { c.DynamicInstrs = 10 },
		func(c *Config) { c.CoreFrac = 1.5 },
		func(c *Config) { c.OptionalProb = -0.1 },
		func(c *Config) { c.LoadFrac = 0.8; c.StoreFrac = 0.3 },
		func(c *Config) { c.DataKB = 0 },
		func(c *Config) { c.HotDataKB = c.DataKB + 1 },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := testConfig()
	c.CodeKB = 0
	New(c)
}

func TestLayoutCoversConfiguredFootprint(t *testing.T) {
	p := New(testConfig())
	wantLines := 400 * linesPerKB
	if got := p.CodeLines(); got != wantLines {
		t.Errorf("CodeLines = %d, want %d", got, wantLines)
	}
	if p.StaticFootprintBytes() != wantLines*lineSize {
		t.Errorf("StaticFootprintBytes = %d", p.StaticFootprintBytes())
	}
	if p.NumSegments() < 10 {
		t.Errorf("suspiciously few segments: %d", p.NumSegments())
	}
}

func TestLayoutDeterministic(t *testing.T) {
	a, b := New(testConfig()), New(testConfig())
	if a.CodeLines() != b.CodeLines() || a.NumSegments() != b.NumSegments() {
		t.Fatal("layout not deterministic")
	}
	for i := range a.lineAddr {
		if a.lineAddr[i] != b.lineAddr[i] {
			t.Fatal("line addresses differ")
		}
	}
}

func TestLayoutSeedSensitivity(t *testing.T) {
	c2 := testConfig()
	c2.Seed = 999
	a, b := New(testConfig()), New(c2)
	same := true
	for i := 0; i < min(a.CodeLines(), b.CodeLines()); i++ {
		if a.lineAddr[i] != b.lineAddr[i] {
			same = false
			break
		}
	}
	if same && a.NumSegments() == b.NumSegments() {
		t.Error("different seeds produced identical layout")
	}
}

func TestInvocationDeterminism(t *testing.T) {
	p := New(testConfig())
	a, b := p.NewInvocation(7), p.NewInvocation(7)
	for i := 0; ; i++ {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb {
			t.Fatalf("streams ended at different lengths (instr %d)", i)
		}
		if !oka {
			break
		}
		if ia != ib {
			t.Fatalf("instr %d differs: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestInvocationsDiffer(t *testing.T) {
	p := New(testConfig())
	if p.DynamicLength(1) == p.DynamicLength(2) &&
		stats.Jaccard(p.FootprintBlocks(1), p.FootprintBlocks(2)) == 1.0 {
		t.Error("invocations 1 and 2 are identical; optional segments never vary")
	}
}

func TestDynamicLengthNearTarget(t *testing.T) {
	p := New(testConfig())
	for id := uint64(0); id < 5; id++ {
		n := p.DynamicLength(id)
		if n < 200_000 {
			t.Errorf("inv %d: dynamic length %d below target", id, n)
		}
		if n > 400_000 {
			t.Errorf("inv %d: dynamic length %d wildly above target", id, n)
		}
	}
}

func TestFootprintNearTarget(t *testing.T) {
	p := New(testConfig())
	var s stats.Summary
	for id := uint64(0); id < 8; id++ {
		fp := len(p.FootprintBlocks(id)) * lineSize
		s.Add(float64(fp))
	}
	// With CoreFrac 0.8 and OptionalProb ~0.7, expected coverage is roughly
	// 0.8 + 0.2*0.7 = 94% of 400 KB; allow a generous band.
	mean := s.Mean() / 1024
	if mean < 300 || mean > 410 {
		t.Errorf("mean footprint %vKB, want ~370KB", mean)
	}
}

func TestCommonalityCalibration(t *testing.T) {
	p := New(testConfig())
	sets := make([]map[uint64]struct{}, 6)
	for i := range sets {
		sets[i] = p.FootprintBlocks(uint64(i))
	}
	var s stats.Summary
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			s.Add(stats.Jaccard(sets[i], sets[j]))
		}
	}
	if s.Mean() < 0.85 || s.Mean() > 0.99 {
		t.Errorf("mean Jaccard = %v, want ~0.9", s.Mean())
	}
}

func TestInstructionStreamShape(t *testing.T) {
	p := New(testConfig())
	inv := p.NewInvocation(3)
	var loads, stores, branches, taken, indirect, noisyOrCond, dep, total int
	var kernelInstrs int
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		total++
		switch in.Op {
		case OpLoad:
			loads++
			if in.DepLoad {
				dep++
			}
			if in.MemAddr == 0 {
				t.Fatal("load without address")
			}
		case OpStore:
			stores++
		case OpBranch:
			branches++
			if in.Taken {
				taken++
				if in.Target == 0 {
					t.Fatal("taken branch without target")
				}
			}
			if in.Indirect {
				indirect++
			}
			if in.Cond {
				noisyOrCond++
			}
		}
		if in.VAddr >= kernelCodeBase {
			kernelInstrs++
		}
	}
	fl := float64(loads) / float64(total)
	fs := float64(stores) / float64(total)
	if fl < 0.18 || fl > 0.30 {
		t.Errorf("load fraction = %v", fl)
	}
	if fs < 0.06 || fs > 0.14 {
		t.Errorf("store fraction = %v", fs)
	}
	if branches == 0 || taken == 0 || indirect == 0 || noisyOrCond == 0 {
		t.Errorf("branch mix empty: br=%d taken=%d ind=%d cond=%d", branches, taken, indirect, noisyOrCond)
	}
	if dep == 0 {
		t.Error("no dependent loads generated")
	}
	if kernelInstrs == 0 {
		t.Error("no kernel-region instructions generated")
	}
	// Roughly one branch opportunity per line.
	brPerLine := float64(branches) / (float64(total) / 16)
	if brPerLine < 0.2 || brPerLine > 1.0 {
		t.Errorf("branches per line = %v", brPerLine)
	}
}

func TestMemAddrsWithinRegions(t *testing.T) {
	p := New(testConfig())
	inv := p.NewInvocation(5)
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		if in.Op != OpLoad && in.Op != OpStore {
			continue
		}
		// The warm set alternates between two generations, so the heap
		// spans hot + 2x warm; the cold region likewise has two
		// generations.
		heapSpan := uint64(p.cfg.HotDataKB<<10) + 2*uint64((p.cfg.DataKB-p.cfg.HotDataKB)<<10) + 8
		inHeap := in.MemAddr >= heapBase && in.MemAddr < heapBase+heapSpan
		inCold := in.MemAddr >= coldBase && in.MemAddr < coldBase+2*coldRegionBytes
		if !inHeap && !inCold {
			t.Fatalf("memory address %#x outside data regions", in.MemAddr)
		}
	}
}

func TestVAddrsWithinCodeRegions(t *testing.T) {
	p := New(testConfig())
	inv := p.NewInvocation(1)
	lines := make(map[uint64]bool, p.CodeLines())
	for _, a := range p.lineAddr {
		lines[a] = true
	}
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		if !lines[in.VAddr&^uint64(lineSize-1)] {
			t.Fatalf("instruction at %#x outside laid-out code", in.VAddr)
		}
	}
}

func TestFootprintBlocksMatchesWalk(t *testing.T) {
	p := New(testConfig())
	want := make(map[uint64]struct{})
	inv := p.NewInvocation(9)
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		want[in.VAddr&^uint64(lineSize-1)] = struct{}{}
	}
	got := p.FootprintBlocks(9)
	if len(got) != len(want) {
		t.Fatalf("FootprintBlocks = %d lines, walk saw %d", len(got), len(want))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package program

import (
	"testing"
)

// maxCanonical is the x86-64 canonical-address ceiling the generator's
// layout must stay under.
const maxCanonical = uint64(1) << 48

// fuzzConfig maps raw fuzz inputs onto a valid Config: every knob is scaled
// into its documented range, sizes are clamped so a single walk stays
// test-speed. The mapping is surjective enough that the fuzzer can reach
// every structural regime (kernel-heavy, call-heavy, skip-heavy, indirect).
func fuzzConfig(seed uint64, codeKB uint16, dyn uint32,
	core, opt, rare, call, skip, load, cond, ind byte) Config {
	frac := func(b byte) float64 { return float64(b) / 255 }
	ck := 4 + int(codeKB)%252 // 4..255 KB
	dn := int(dyn) % 200_000
	if dn < ck*16 {
		dn = ck * 16
	}
	dataKB := 8 + int(seed)%120
	return Config{
		Name:          "fuzz",
		Seed:          seed,
		CodeKB:        ck,
		DynamicInstrs: dn,
		CoreFrac:      frac(core),
		OptionalProb:  frac(opt),
		RareFrac:      frac(rare) * 0.5,
		RareProb:      frac(rare) * 0.2,
		InstrPerLine:  1 + int(seed>>8)%64,
		LoadFrac:      frac(load) * 0.55,
		StoreFrac:     frac(load) * 0.3,
		CondFrac:      frac(cond),
		CondBias:      0.9,
		NoisyFrac:     frac(cond) * 0.2,
		SkipFrac:      frac(skip) * 0.3,
		IndirectFrac:  frac(ind),
		CallFrac:      frac(call) * 0.8,
		DataKB:        dataKB,
		HotDataKB:     1 + int(seed>>16)%dataKB,
		HotDataFrac:   0.8,
		ColdDataFrac:  0.1,
		DepLoadFrac:   0.3,
		KernelFrac:    frac(ind) * 0.5,
	}
}

// FuzzProgramWalk asserts the synthetic-program generator is total and
// well-formed for any in-range configuration: every invocation walk
// terminates within a linear bound, replays bit-identically for the same id,
// matches DynamicLength, and emits only canonical addresses with memory
// operands in the data regions.
func FuzzProgramWalk(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint32(50_000),
		byte(128), byte(128), byte(64), byte(40), byte(30), byte(120), byte(100), byte(20))
	f.Add(uint64(42), uint16(4), uint32(0),
		byte(255), byte(0), byte(0), byte(0), byte(0), byte(0), byte(0), byte(0)) // minimal, branch-free
	f.Add(uint64(7), uint16(255), uint32(199_999),
		byte(0), byte(255), byte(255), byte(204), byte(255), byte(255), byte(255), byte(255)) // every knob maxed
	f.Add(uint64(0xdeadbeef), uint16(32), uint32(10_000),
		byte(64), byte(32), byte(16), byte(8), byte(4), byte(2), byte(1), byte(128))

	f.Fuzz(func(t *testing.T, seed uint64, codeKB uint16, dyn uint32,
		core, opt, rare, call, skip, load, cond, ind byte) {
		cfg := fuzzConfig(seed, codeKB, dyn, core, opt, rare, call, skip, load, cond, ind)
		p, err := NewErr(cfg)
		if err != nil {
			t.Fatalf("fuzzConfig produced an invalid config: %v\n%+v", err, cfg)
		}

		// The walk must terminate well within a linear bound of the
		// configured dynamic size. The plan always includes one full pass
		// over the template, so the footprint itself (lines × InstrPerLine,
		// times the ≤ 1+0.8·4 call expansion) is part of the bound, not just
		// DynamicInstrs.
		bound := 2*uint64(cfg.DynamicInstrs) +
			5*uint64(cfg.CodeKB*16*cfg.InstrPerLine) + 100_000
		inv := p.NewInvocation(seed)
		var n uint64
		for {
			in, ok := inv.Next()
			if !ok {
				break
			}
			n++
			if n > bound {
				t.Fatalf("walk exceeded %d instructions (DynamicInstrs %d)", bound, cfg.DynamicInstrs)
			}
			if in.VAddr == 0 || in.VAddr >= maxCanonical {
				t.Fatalf("instr %d: non-canonical PC %#x", n, in.VAddr)
			}
			switch in.Op {
			case OpLoad, OpStore:
				if in.MemAddr < heapBase || in.MemAddr >= maxCanonical {
					t.Fatalf("instr %d: memory operand %#x outside data regions", n, in.MemAddr)
				}
			case OpBranch:
				if in.Taken && (in.Target == 0 || in.Target >= maxCanonical) {
					t.Fatalf("instr %d: taken branch with bad target %#x", n, in.Target)
				}
			}
		}
		if n == 0 {
			t.Fatal("walk emitted no instructions")
		}
		if dl := p.DynamicLength(seed); dl != n {
			t.Fatalf("DynamicLength(%d) = %d, walk emitted %d", seed, dl, n)
		}

		// Replay determinism: the same id yields the same stream.
		a, b := p.NewInvocation(seed), p.NewInvocation(seed)
		for i := uint64(0); ; i++ {
			ia, oka := a.Next()
			ib, okb := b.Next()
			if oka != okb || ia != ib {
				t.Fatalf("instr %d: replay diverged: %+v vs %+v", i, ia, ib)
			}
			if !oka {
				break
			}
		}
	})
}

package program

import (
	"math"
	"testing"
	"testing/quick"
)

// randomConfig maps arbitrary generator inputs onto a valid Config, so the
// property tests explore the whole constructor surface.
func randomConfig(seed uint64, a, b, c, d, e float64, codeSel, dynSel uint8) Config {
	clamp01 := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0.5
		}
		return math.Abs(math.Mod(v, 1))
	}
	codeKB := 32 + int(codeSel)%512 // 32..543 KB
	dynMul := 20 + int(dynSel)%80   // 20..99 instrs per line of code
	return Config{
		Name:          "prop-fn",
		Seed:          seed,
		CodeKB:        codeKB,
		DynamicInstrs: codeKB * 16 * dynMul / 16 * 16, // comfortably above floor
		CoreFrac:      0.5 + clamp01(a)*0.45,
		OptionalProb:  0.3 + clamp01(b)*0.6,
		RareFrac:      clamp01(c) * 0.1,
		RareProb:      clamp01(d) * 0.2,
		InstrPerLine:  16,
		LoadFrac:      0.15 + clamp01(e)*0.15,
		StoreFrac:     0.05 + clamp01(a)*0.08,
		CondFrac:      clamp01(b) * 0.4,
		CondBias:      0.7 + clamp01(c)*0.25,
		NoisyFrac:     clamp01(d) * 0.05,
		IndirectFrac:  clamp01(e) * 0.4,
		CallFrac:      clamp01(a) * 0.6,
		SkipFrac:      clamp01(b) * 0.1,
		DataKB:        32 + int(codeSel)%128,
		HotDataKB:     8,
		HotDataFrac:   0.5 + clamp01(c)*0.3,
		ColdDataFrac:  clamp01(d) * 0.1,
		DepLoadFrac:   clamp01(e) * 0.3,
		KernelFrac:    clamp01(a) * 0.25,
	}
}

// TestProgramInvariantsProperty checks constructor-level invariants over
// randomized valid configurations:
//   - construction never panics,
//   - every instruction lies inside the laid-out code,
//   - the dynamic footprint never exceeds the static footprint,
//   - the walk is deterministic per invocation id.
func TestProgramInvariantsProperty(t *testing.T) {
	f := func(seed uint64, a, b, c, d, e float64, codeSel, dynSel uint8) bool {
		cfg := randomConfig(seed, a, b, c, d, e, codeSel, dynSel)
		if cfg.Validate() != nil {
			return true // out-of-envelope draws are skipped, not failures
		}
		p := New(cfg)
		lines := make(map[uint64]bool, p.CodeLines())
		for _, addr := range p.lineAddr {
			lines[addr] = true
		}
		fp := 0
		seen := make(map[uint64]struct{})
		inv := p.NewInvocation(seed % 7)
		for {
			in, ok := inv.Next()
			if !ok {
				break
			}
			blk := in.VAddr &^ uint64(lineSize-1)
			if !lines[blk] {
				t.Logf("instruction at %#x outside code layout", in.VAddr)
				return false
			}
			if _, dup := seen[blk]; !dup {
				seen[blk] = struct{}{}
				fp++
			}
		}
		if fp > p.CodeLines() {
			t.Logf("dynamic footprint %d exceeds static %d", fp, p.CodeLines())
			return false
		}
		if p.DynamicLength(seed%7) != inv.Emitted() {
			t.Logf("walk length not deterministic")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestBranchTargetsValidProperty checks that every taken branch targets a
// laid-out code line.
func TestBranchTargetsValidProperty(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		cfg := randomConfig(seed, a, b, a, b, a, uint8(seed), uint8(seed>>8))
		if cfg.Validate() != nil {
			return true
		}
		p := New(cfg)
		lines := make(map[uint64]bool, p.CodeLines())
		for _, addr := range p.lineAddr {
			lines[addr] = true
		}
		inv := p.NewInvocation(1)
		for {
			in, ok := inv.Next()
			if !ok {
				return true
			}
			if in.Op == OpBranch && in.Taken && !lines[in.Target&^uint64(lineSize-1)] {
				t.Logf("branch target %#x outside code layout", in.Target)
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Package program synthesizes serverless function programs: deterministic
// generators of dynamic instruction streams with calibrated instruction
// footprints, cross-invocation commonality, branch behavior, and data access
// patterns.
//
// The paper's workloads are real containerized functions; what Jukebox and
// the characterization depend on are their *address-stream properties*
// (Sec. 2.5): per-invocation instruction footprints of 300-800 KB, ≥90 %
// Jaccard commonality between invocations, high spatial locality at ~1 KB
// code-region granularity, and short dynamic lengths. This package exposes
// each property as a constructor knob so the workload suite (package
// workload) can dial in the paper's own measurements.
//
// A program is a set of code segments laid out over a virtual code region at
// cache-line granularity. Segments are classified core (every invocation,
// fixed order), optional (per-invocation coin flip — the source of
// footprint variation), and rare (error/slow paths — the source of Jaccard
// outliers). A small dispatcher segment, standing in for the language
// runtime's event loop, is re-entered between segments. Invocations walk the
// template with a per-invocation RNG stream, so invocation k replays
// bit-identically no matter how many times it is generated.
package program

import (
	"math"

	"lukewarm/internal/cfgerr"
)

// Op classifies a dynamic instruction.
type Op uint8

// Dynamic instruction kinds.
const (
	// OpPlain is a non-memory, non-branch instruction.
	OpPlain Op = iota
	// OpLoad reads memory.
	OpLoad
	// OpStore writes memory.
	OpStore
	// OpBranch transfers (or may transfer) control.
	OpBranch
)

// Instr is one dynamic instruction delivered to the core model.
type Instr struct {
	// VAddr is the instruction's virtual address.
	VAddr uint64
	// Op classifies the instruction.
	Op Op
	// MemAddr is the virtual effective address for OpLoad/OpStore.
	MemAddr uint64
	// DepLoad marks a load that depends on an earlier in-flight load
	// (pointer chasing); it cannot overlap with its producer.
	DepLoad bool
	// Branch fields, valid for OpBranch:
	// Taken reports the actual outcome; Target the actual next PC when
	// taken; Cond distinguishes conditional branches from jumps/calls;
	// Indirect marks data-dependent targets (interpreter dispatch).
	Taken    bool
	Target   uint64
	Cond     bool
	Indirect bool
}

// segClass classifies template segments.
type segClass uint8

const (
	segCore segClass = iota
	segOptional
	segRare
	segDispatch
)

// segment is a contiguous run of code lines executed as a unit.
type segment struct {
	class     segClass
	firstLine int // index into the program's line address table
	numLines  int
	prob      float64 // inclusion probability for optional/rare
	loop      bool    // participates in dynamic-length padding
	kernel    bool    // lives in the kernel code region
}

// Config describes one synthetic function. The workload package provides
// per-language presets; see DESIGN.md for the calibration targets.
type Config struct {
	// Name labels the program in diagnostics.
	Name string
	// Seed determinizes layout and all invocation streams.
	Seed uint64
	// CodeKB is the target per-invocation instruction footprint in KB
	// (unique 64 B blocks × 64). Fig. 6a's measured range is 300-800 KB.
	CodeKB int
	// DynamicInstrs is the approximate dynamic instruction count per
	// invocation. Must comfortably exceed the straight-line size of the
	// footprint or the walk is truncated by construction.
	DynamicInstrs int
	// CoreFrac is the fraction of code lines in always-executed segments;
	// together with OptionalProb it sets cross-invocation commonality.
	CoreFrac float64
	// OptionalProb is the per-invocation inclusion probability of optional
	// segments.
	OptionalProb float64
	// RareFrac is the fraction of lines in rarely-executed segments.
	RareFrac float64
	// RareProb is the per-invocation inclusion probability of rare segments.
	RareProb float64
	// InstrPerLine is the number of instructions per 64 B code line
	// (64 / average instruction length). x86 averages ~4 B: 16.
	InstrPerLine int
	// LoadFrac / StoreFrac are per-instruction memory-op probabilities.
	LoadFrac, StoreFrac float64
	// CondFrac is the probability that a sequential line ends in a
	// conditional (predictable, biased) branch.
	CondFrac float64
	// CondBias is the taken probability of those conditional branches.
	CondBias float64
	// NoisyFrac is the probability that a line ends in a data-dependent
	// 50/50 conditional branch — the bad-speculation source.
	NoisyFrac float64
	// SkipFrac is the probability that a line ends in a taken conditional
	// that jumps over the following line. Skips are drawn per invocation,
	// so the block-level fetch stream diverges between invocations at fine
	// granularity — the divergence that forces temporal-streaming
	// prefetchers (PIF) to re-index while leaving footprint commonality
	// (and therefore Jukebox) nearly untouched.
	SkipFrac float64
	// IndirectFrac is the probability that a segment transfer is an
	// indirect branch (interpreter/JIT dispatch): hard for the BTB.
	IndirectFrac float64
	// CallFrac is the probability a code line ends with a call-out to a
	// short helper routine elsewhere in the footprint. Calls are assigned
	// at layout time (they are in the binary), so every invocation that
	// executes the line takes the call. They interleave distant code
	// regions in the fetch stream, which is what limits CRRB coalescing
	// and gives real functions their 10-30 KB Jukebox metadata (Fig. 8).
	CallFrac float64
	// DataKB / HotDataKB size the data working set and its hot subset.
	DataKB, HotDataKB int
	// ChurnSlideKB sets how far the allocator's live window slides through
	// the churned-heap arena per invocation, in KB. Zero selects half the
	// churned region — two alternating generations, the historical
	// default. Smaller values make the window drift gradually, so a frozen
	// snapshot of one invocation's pages (a REAP manifest) goes stale
	// monotonically with age rather than flipping between two states.
	ChurnSlideKB int
	// HotDataFrac is the probability a memory op targets the hot subset.
	HotDataFrac float64
	// ColdDataFrac is the probability a memory op streams through a large
	// cold region (request payloads); the rest hits the warm set.
	ColdDataFrac float64
	// DepLoadFrac is the fraction of loads marked dependent.
	DepLoadFrac float64
	// KernelFrac is the fraction of segments placed in the kernel code
	// region (network stack, syscalls on the invocation path).
	KernelFrac float64
}

// Validate reports a descriptive error for out-of-range configuration.
func (c Config) Validate() error {
	switch {
	case c.CodeKB < 4:
		return cfgerr.New("program %q: CodeKB %d too small", c.Name, c.CodeKB)
	case c.InstrPerLine < 1 || c.InstrPerLine > 64:
		return cfgerr.New("program %q: InstrPerLine %d out of range", c.Name, c.InstrPerLine)
	case c.DynamicInstrs < c.CodeKB*16: // one instruction per line minimum
		return cfgerr.New("program %q: DynamicInstrs %d cannot cover %d KB of code", c.Name, c.DynamicInstrs, c.CodeKB)
	case c.CoreFrac < 0 || c.CoreFrac > 1 || c.OptionalProb < 0 || c.OptionalProb > 1:
		return cfgerr.New("program %q: fractions out of [0,1]", c.Name)
	case c.CallFrac < 0 || c.CallFrac > 0.8:
		return cfgerr.New("program %q: CallFrac %v out of [0, 0.8]", c.Name, c.CallFrac)
	case c.SkipFrac < 0 || c.SkipFrac > 0.3:
		return cfgerr.New("program %q: SkipFrac %v out of [0, 0.3]", c.Name, c.SkipFrac)
	case c.LoadFrac+c.StoreFrac > 0.9:
		return cfgerr.New("program %q: memory-op fraction %v too high", c.Name, c.LoadFrac+c.StoreFrac)
	case c.DataKB <= 0 || c.HotDataKB <= 0 || c.HotDataKB > c.DataKB:
		return cfgerr.New("program %q: data sizes invalid (%d/%d KB)", c.Name, c.HotDataKB, c.DataKB)
	case c.ChurnSlideKB < 0:
		return cfgerr.New("program %q: ChurnSlideKB %d negative", c.Name, c.ChurnSlideKB)
	}
	return nil
}

// Virtual-address layout constants. Each program's regions live at these
// bases within its own address space; separate instances never share frames
// (containers do not share page cache in this model).
const (
	userCodeBase   = 0x0000_0040_0000
	kernelCodeBase = 0x7000_0000_0000
	heapBase       = 0x0000_2000_0000
	coldBase       = 0x0000_4000_0000
	lineSize       = 64
	linesPerKB     = 1024 / lineSize
)

// Program is an immutable synthetic function; invocations are generated from
// it on demand.
type Program struct {
	cfg      Config
	segments []segment
	lineAddr []uint64 // line index -> virtual address of the 64 B code line
	dispatch int      // segment index of the dispatcher
	// callTarget[i] is the absolute line index line i calls out to after
	// executing, or -1; callLen[i] is the callee length in lines.
	callTarget []int32
	callLen    []uint8
	// segStart[i] marks lines that begin a segment (indirect-branch
	// targets: dispatch sites).
	segStart []bool
	// singlePassInstrs is the expected dynamic length of one template pass,
	// used to scale loop padding toward DynamicInstrs.
	singlePassInstrs int
	// der holds values derived once from cfg so the per-instruction walker
	// does not recompute them. Each is the exact float/integer value the
	// walker previously computed inline (float addition is deterministic),
	// so hoisting them is bit-identical.
	der derived
	// loopSegs lists the loop-class segment indices in template order, the
	// padding pool buildPlanInto cycles through.
	loopSegs []int
}

// derived caches per-instruction constants of one program.
type derived struct {
	stride    uint64  // bytes between instruction slots in a line
	condTaken float64 // 1 - CondBias
	warmLo    uint64  // warm-region offset lower bound
	warmHalf  uint64  // half the warm region
	// Integer probability thresholds for the per-instruction draws:
	// RNG.Bool(p) is Float64() < p, Float64 is the exact value
	// (Uint64()>>11)/2^53, and p*2^53 is an exact float64 (power-of-two
	// scaling), so `Uint64()>>11 < ceil(p*2^53)` decides the identical
	// predicate without the int-to-float conversion and float compare.
	thrLoad      uint64 // LoadFrac
	thrLoadStore uint64 // LoadFrac + StoreFrac
	thrDepLoad   uint64 // DepLoadFrac
	thrHot       uint64 // HotDataFrac
	thrHotCold   uint64 // HotDataFrac + ColdDataFrac
	thrHalf      uint64 // 0.5 (warm-half split)
	// Fixed-divisor reducers for the effective-address generator: the
	// hot-region span, the warm half-span, and the churned-arena extent.
	// Each replaces a hardware `%` on the walker's hottest path.
	hotDiv   divider
	warmDiv  divider
	warm2Div divider
}

// probThreshold converts probability p into the integer draw threshold t
// such that Uint64()>>11 < t exactly when Float64() < p (see derived).
func probThreshold(p float64) uint64 {
	t := math.Ceil(p * (1 << 53))
	if t <= 0 {
		return 0
	}
	return uint64(t)
}

func (p *Program) deriveConstants() {
	cfg := &p.cfg
	lo := uint64(cfg.HotDataKB << 10)
	hi := uint64(cfg.DataKB << 10)
	if hi <= lo {
		hi = lo + 16
	}
	half := (hi - lo) / 2
	d := derived{
		stride:       uint64(lineSize / cfg.InstrPerLine),
		condTaken:    1 - cfg.CondBias,
		warmLo:       lo,
		warmHalf:     half,
		thrLoad:      probThreshold(cfg.LoadFrac),
		thrLoadStore: probThreshold(cfg.LoadFrac + cfg.StoreFrac),
		thrDepLoad:   probThreshold(cfg.DepLoadFrac),
		thrHot:       probThreshold(cfg.HotDataFrac),
		thrHotCold:   probThreshold(cfg.HotDataFrac + cfg.ColdDataFrac),
		thrHalf:      probThreshold(0.5),
		warmDiv:      newDivider(half),
		warm2Div:     newDivider(2 * half),
	}
	if span := cfg.HotDataKB << 10; span > 0 {
		d.hotDiv = newDivider(uint64(span))
	}
	p.der = d
	p.loopSegs = p.loopSegs[:0]
	for si := range p.segments {
		if p.segments[si].loop {
			p.loopSegs = append(p.loopSegs, si)
		}
	}
}

// New builds a program from cfg. It panics on invalid configuration —
// configurations are compiled into the workload suite, so an invalid one is
// a programming error. Callers building programs from user input should use
// NewErr instead.
func New(cfg Config) *Program {
	p, err := NewErr(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// NewErr builds a program from cfg, returning a validation error (wrapping
// cfgerr.ErrBadConfig) instead of panicking on bad configuration.
func NewErr(cfg Config) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Program{cfg: cfg}
	p.layout()
	p.singlePassInstrs = p.expectedPassInstrs()
	p.deriveConstants()
	return p, nil
}

// layout partitions the code footprint into segments and assigns virtual
// addresses. Layout randomness comes from the program seed only, never from
// invocation streams: the code of a deployed function does not move between
// invocations.
func (p *Program) layout() {
	rng := NewRNG(Mix(p.cfg.Seed, 0xC0DE))
	totalLines := p.cfg.CodeKB * linesPerKB

	// Dispatcher: a small, very hot segment (runtime event loop).
	dispatchLines := 8 + rng.Intn(8)

	remaining := totalLines - dispatchLines
	coreLines := int(float64(remaining) * p.cfg.CoreFrac)
	rareLines := int(float64(remaining) * p.cfg.RareFrac)
	optLines := remaining - coreLines - rareLines

	nextLine := 0
	userVA := uint64(userCodeBase)
	kernelVA := uint64(kernelCodeBase)
	addSegment := func(class segClass, n int, prob float64, kernel bool) {
		if n <= 0 {
			return
		}
		base := &userVA
		if kernel {
			base = &kernelVA
		}
		// Pad segment starts for alignment realism: 0-3 dead lines.
		*base += uint64(rng.Intn(4) * lineSize)
		seg := segment{class: class, firstLine: nextLine, numLines: n, prob: prob, kernel: kernel}
		for i := 0; i < n; i++ {
			p.lineAddr = append(p.lineAddr, *base)
			*base += lineSize
		}
		nextLine += n
		p.segments = append(p.segments, seg)
	}

	addSegment(segDispatch, dispatchLines, 1, false)
	p.dispatch = len(p.segments) - 1

	carve := func(class segClass, budget int, probFor func() float64) {
		for budget > 0 {
			n := rng.Range(8, 64) // 0.5-4 KB routines
			if n > budget {
				n = budget
			}
			kernel := rng.Bool(p.cfg.KernelFrac)
			addSegment(class, n, probFor(), kernel)
			budget -= n
		}
	}
	carve(segCore, coreLines, func() float64 { return 1 })
	carve(segOptional, optLines, func() float64 {
		// Spread around the configured probability for texture.
		d := p.cfg.OptionalProb + (rng.Float64()-0.5)*0.2
		if d < 0.05 {
			d = 0.05
		}
		if d > 0.98 {
			d = 0.98
		}
		return d
	})
	carve(segRare, rareLines, func() float64 { return p.cfg.RareProb })

	// Mark a subset of core segments as loop bodies for dynamic-length
	// padding (the handler's compute kernels).
	loops := 0
	for i := range p.segments {
		if p.segments[i].class == segCore && rng.Bool(0.3) {
			p.segments[i].loop = true
			loops++
		}
	}
	if loops == 0 { // guarantee at least one
		for i := range p.segments {
			if p.segments[i].class == segCore {
				p.segments[i].loop = true
				break
			}
		}
	}

	p.assignCalls(rng)
}

// assignCalls wires call-outs from code lines to short helper routines in
// other segments. The wiring is part of the layout: a line that calls a
// helper does so on every execution.
func (p *Program) assignCalls(rng *RNG) {
	n := len(p.lineAddr)
	p.callTarget = make([]int32, n)
	p.callLen = make([]uint8, n)
	p.segStart = make([]bool, n)
	for i := range p.callTarget {
		p.callTarget[i] = -1
	}
	for _, s := range p.segments {
		p.segStart[s.firstLine] = true
	}
	if p.cfg.CallFrac <= 0 || len(p.segments) < 3 {
		return
	}
	// Callees are helper routines in always-executed (core) code — library
	// and runtime functions. Restricting targets to core segments keeps the
	// optional segments' per-invocation inclusion the sole driver of
	// footprint variation.
	var coreSegs []int
	for si, s := range p.segments {
		if s.class == segCore && si != p.dispatch {
			coreSegs = append(coreSegs, si)
		}
	}
	if len(coreSegs) < 2 {
		return
	}
	for si, s := range p.segments {
		if si == p.dispatch {
			continue
		}
		for l := 0; l < s.numLines; l++ {
			if !rng.Bool(p.cfg.CallFrac) {
				continue
			}
			// Pick a callee segment other than the caller.
			ti := coreSegs[rng.Intn(len(coreSegs))]
			if ti == si {
				continue
			}
			t := &p.segments[ti]
			callLen := rng.Range(1, 4)
			if callLen > t.numLines {
				callLen = t.numLines
			}
			start := rng.Intn(t.numLines - callLen + 1)
			abs := s.firstLine + l
			p.callTarget[abs] = int32(t.firstLine + start)
			p.callLen[abs] = uint8(callLen)
		}
	}
}

// callExpansion is the expected dynamic multiplier from call-outs.
func (p *Program) callExpansion() float64 {
	return 1 + p.cfg.CallFrac*2.5 // mean callee length is 2.5 lines
}

// expectedPassInstrs estimates dynamic instructions in one template pass
// with expected optional inclusion.
func (p *Program) expectedPassInstrs() int {
	per := p.cfg.InstrPerLine
	total := 0.0
	for _, s := range p.segments {
		total += float64(s.numLines*per) * s.prob * p.callExpansion()
	}
	// Dispatcher re-entry between segments.
	d := p.segments[p.dispatch]
	total += float64(len(p.segments)) * float64(d.numLines*per) * 0.25
	return int(total)
}

// Config returns the program's configuration.
func (p *Program) Config() Config { return p.cfg }

// CodeLines reports the total number of code lines across all segments.
func (p *Program) CodeLines() int { return len(p.lineAddr) }

// StaticFootprintBytes reports the laid-out code size in bytes.
func (p *Program) StaticFootprintBytes() int { return len(p.lineAddr) * lineSize }

// NumSegments reports the number of segments (including the dispatcher).
func (p *Program) NumSegments() int { return len(p.segments) }

package program

// RNG is a small, fast, deterministic xorshift64* generator. Every source of
// randomness in the simulator flows through named RNG streams seeded from
// (function, invocation) pairs, so whole experiments replay bit-identically.
type RNG struct {
	state uint64
}

// NewRNG creates a generator from seed; a zero seed is remapped to a fixed
// non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	//lukewarm:hotalloc inlined at every hot call site and immediately dereferenced, so escape analysis keeps it on the stack (perfgate-verified)
	return &RNG{state: seed}
}

// Mix hashes two seeds into one (splitmix64 finalizer), used to derive
// per-invocation streams from a per-function seed.
func Mix(a, b uint64) uint64 {
	z := a + 0x9E3779B97F4A7C15 + b*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Uint64 returns the next raw 64-bit value.
//lukewarm:hotpath noalloc,noescape,inline,nobce three draws per generated instruction; must compile to straight-line xorshift
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics for n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("program: Intn bound must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a value in [lo, hi] inclusive. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("program: Range bounds inverted")
	}
	return lo + r.Intn(hi-lo+1)
}

package program

import "math/bits"

// divider performs division and remainder by a fixed divisor with a
// multiply-high sequence instead of a hardware divide (Granlund &
// Montgomery, "Division by Invariant Integers using Multiplication",
// PLDI'94 — the construction libdivide ships). The walker's effective-
// address generator reduces one RNG draw modulo a per-program region size
// for every load and store; hardware 64-bit division costs 20-40 cycles on
// the host, the multiply-high sequence under 5. Results are exactly n/d and
// n%d for every 64-bit n, so the generated streams are bit-identical to the
// hardware-divide path (the unit tests sweep edge divisors exhaustively
// against the native operators).
type divider struct {
	magic uint64
	d     uint64
	shift uint8
	add   bool
}

// newDivider prepares a divider for d. d == 0 yields the zero divider,
// whose mod panics at use — matching RNG.Intn's panic-on-use contract for
// non-positive bounds.
func newDivider(d uint64) divider {
	if d == 0 {
		return divider{}
	}
	floorLog := uint8(63 - bits.LeadingZeros64(d))
	if d&(d-1) == 0 {
		// Power of two: a plain shift (magic 0 flags this path).
		return divider{d: d, shift: floorLog}
	}
	// proposedM = floor(2^(64+floorLog) / d), with remainder.
	proposedM, rem := bits.Div64(uint64(1)<<floorLog, 0, d)
	var add bool
	if e := d - rem; e >= uint64(1)<<floorLog {
		// The round-up magic would not fit in 64 bits: use the wider
		// magic with the add-and-shift fixup.
		proposedM += proposedM
		twiceRem := rem + rem
		if twiceRem >= d || twiceRem < rem {
			proposedM++
		}
		add = true
	}
	return divider{magic: proposedM + 1, d: d, shift: floorLog, add: add}
}

// div returns n / dv.d.
//lukewarm:hotpath noalloc,inline,nobce the multiply-high sequence only beats hardware divide if it inlines
func (dv divider) div(n uint64) uint64 {
	if dv.magic == 0 {
		return n >> dv.shift
	}
	q, _ := bits.Mul64(dv.magic, n)
	if dv.add {
		t := ((n - q) >> 1) + q
		return t >> dv.shift
	}
	return q >> dv.shift
}

// mod returns n % dv.d. It panics on the zero divider, mirroring
// RNG.Intn's bound check.
//lukewarm:hotpath noalloc,inline,nobce one mod per generated effective address
func (dv divider) mod(n uint64) uint64 {
	if dv.d == 0 {
		panic("program: Intn bound must be positive")
	}
	return n - dv.div(n)*dv.d
}

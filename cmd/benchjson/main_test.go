package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: lukewarm/internal/cluster
cpu: whatever
BenchmarkFleetChaos-8   	       5	 214631842 ns/op
BenchmarkFleetFaultFree-8 	       6	 180000000 ns/op	  12 B/op	   3 allocs/op
PASS
ok  	lukewarm/internal/cluster	3.1s
pkg: lukewarm
BenchmarkExtensionCluster-8 	       1	1000000000 ns/op	        97.50 avail%
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if recs[0].Name != "BenchmarkFleetChaos-8" || recs[0].Package != "lukewarm/internal/cluster" {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[0].Iterations != 5 || recs[0].Metrics["ns/op"] != 214631842 {
		t.Errorf("first record counters = %+v", recs[0])
	}
	if recs[1].Metrics["allocs/op"] != 3 {
		t.Errorf("second record metrics = %+v", recs[1].Metrics)
	}
	if recs[2].Package != "lukewarm" || recs[2].Metrics["avail%"] != 97.5 {
		t.Errorf("third record = %+v", recs[2])
	}

	if _, err := parse(bufio.NewScanner(strings.NewReader("Benchmark-X 2 oops ns/op junk extra\n"))); err == nil {
		t.Error("malformed value accepted")
	}
}

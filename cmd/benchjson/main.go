// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark runs can be checked in and
// diffed as a performance trajectory (BENCH_*.json; see the Makefile's
// bench target).
//
// Usage:
//
//	go test -run '^$' -bench . ./... | benchjson > BENCH_N.json
//
// Each benchmark line becomes one record carrying the package it ran in,
// the iteration count, and every reported metric (ns/op, B/op, custom
// b.ReportMetric units). Non-benchmark lines are ignored, so the tool
// tolerates interleaved PASS/ok/pkg chatter.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one benchmark result.
type record struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op" and any
	// custom units (encoding/json sorts keys, so output is stable).
	Metrics map[string]float64 `json:"metrics"`
}

// parse consumes go test -bench output and returns the records in input
// order.
func parse(sc *bufio.Scanner) ([]record, error) {
	var recs []record
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := record{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			r.Metrics[fields[i+1]] = v
		}
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	recs, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command lukewarmlint is the multichecker for lukewarm's static-enforcement
// suite (internal/analysis): five analyzers that hold the tree to the
// determinism and configuration-hygiene invariants the golden-figure and
// oracle harnesses otherwise only catch at run time.
//
// Usage:
//
//	lukewarmlint [-list] [packages]
//
// Packages default to ./... and accept any `go list` pattern; run it from
// inside the module (type information is resolved from source through the
// module's own `go list`). Exit status: 0 clean, 1 findings, 2 usage or
// load failure. CI runs `go run ./cmd/lukewarmlint ./...` as a hard gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lukewarm/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lukewarmlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lukewarmlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lukewarmlint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lukewarmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// Command lukewarmlint is the multichecker for lukewarm's static-enforcement
// suite (internal/analysis): the determinism/configuration analyzers plus the
// perf-invariant suite (internal/analysis/perf) that holds annotated hot
// paths to their declared compiler-verified invariants.
//
// Usage:
//
//	lukewarmlint [-list] [-perf=false] [packages]
//
// Packages default to ./... and accept any `go list` pattern; run it from
// the module root (type information is resolved from source through the
// module's own `go list`, and the perf gate's diagnostic rebuild runs from
// the current directory). -perf=false skips the perf suite — both the pure
// analyzers and the `go build -gcflags=-m` compiler gate — for quick
// iteration on the base suite. Exit status: 0 clean, 1 findings, 2 usage or
// load failure. CI runs `make lint` (`go vet` + this command) as a hard gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lukewarm/internal/analysis"
	"lukewarm/internal/analysis/perf"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	perfOn := flag.Bool("perf", true, "run the perf-invariant suite (hotpath analyzers + compiler gate)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lukewarmlint [-list] [-perf=false] [packages]\n\nAnalyzers:\n")
		for _, a := range allAnalyzers(true) {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", "perfgate",
			"verifies //lukewarm:hotpath invariants against go build -gcflags="+
				"'-m=2 -d=ssa/check_bce/debug=1' diagnostics")
	}
	flag.Parse()
	if *list {
		for _, a := range allAnalyzers(*perfOn) {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		if *perfOn {
			fmt.Printf("%-12s %s\n", "perfgate", "verifies //lukewarm:hotpath invariants against compiler diagnostics")
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lukewarmlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, allAnalyzers(*perfOn))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lukewarmlint:", err)
		os.Exit(2)
	}
	if *perfOn {
		gate, err := perf.CompileCheck(".", pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lukewarmlint:", err)
			os.Exit(2)
		}
		diags = append(diags, gate...)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lukewarmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func allAnalyzers(perfOn bool) []*analysis.Analyzer {
	as := analysis.All()
	if perfOn {
		as = append(as, perf.Analyzers()...)
	}
	return as
}

// Command benchdiff compares two benchmark snapshots produced by
// cmd/benchjson and enforces the repository's throughput trajectory: the
// simulator's instruction rate must not silently regress between PRs.
//
// Usage:
//
//	benchdiff [-dir DIR] [-threshold PCT] [old.json new.json]
//
// With explicit file arguments it diffs those two snapshots; with none it
// picks the two highest-numbered BENCH_<n>.json files in -dir (default ".").
// Every metric present in both snapshots is reported. A drop of more than
// -threshold percent (default 10) in the SimulationThroughput benchmark's
// Minstr/s is a hard failure (exit 1); regressions in other benchmarks —
// fleet and experiment benches dominated by scheduling noise — are warnings
// only. Higher-is-better metrics (Minstr/s and friends) and lower-is-better
// ones (ns/op) are both handled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// entry mirrors cmd/benchjson's output element.
type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// key identifies one metric of one benchmark across snapshots.
type key struct {
	bench, metric string
}

// gatedBench is the benchmark whose throughput trajectory is load-bearing:
// PR 9's flattened timing core is only a win if it stays won.
const (
	gatedBench  = "BenchmarkSimulationThroughput"
	gatedMetric = "Minstr/s"
)

// lowerIsBetter reports whether a metric improves downward.
func lowerIsBetter(metric string) bool {
	switch metric {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

func load(path string) (map[key]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[key]float64{}
	for _, e := range entries {
		for name, v := range e.Metrics {
			m[key{e.Name, name}] = v
		}
	}
	return m, nil
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestPair returns the two highest-numbered BENCH_<n>.json paths in dir,
// oldest first.
func latestPair(dir string) (string, string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	type snap struct {
		n    int
		path string
	}
	var snaps []snap
	for _, p := range names {
		m := benchFile.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{n, p})
	}
	if len(snaps) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<n>.json snapshots in %s, found %d", dir, len(snaps))
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps[len(snaps)-2].path, snaps[len(snaps)-1].path, nil
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
	threshold := flag.Float64("threshold", 10, "max tolerated %% regression in the gated throughput metric")
	flag.Parse()

	var oldPath, newPath string
	var err error
	switch flag.NArg() {
	case 0:
		oldPath, newPath, err = latestPair(*dir)
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		err = fmt.Errorf("want zero or two file arguments, got %d", flag.NArg())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldM, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	keys := make([]key, 0, len(newM))
	for k := range newM {
		if _, ok := oldM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].metric < keys[j].metric
	})

	fmt.Printf("benchdiff: %s -> %s\n", oldPath, newPath)
	failed := false
	for _, k := range keys {
		ov, nv := oldM[k], newM[k]
		if ov == 0 {
			continue
		}
		deltaPct := (nv - ov) / ov * 100
		regressPct := deltaPct // higher is better: a drop is negative
		if lowerIsBetter(k.metric) {
			regressPct = -deltaPct
		}
		status := "ok"
		switch {
		case k.bench == gatedBench && k.metric == gatedMetric && regressPct < -*threshold:
			status = "FAIL"
			failed = true
		case regressPct < -*threshold:
			status = "warn"
		}
		fmt.Printf("  %-4s %-50s %-10s %12.4g -> %-12.4g (%+.1f%%)\n",
			status, k.bench, k.metric, ov, nv, deltaPct)
	}
	if _, ok := newM[key{gatedBench, gatedMetric}]; !ok {
		fmt.Fprintf(os.Stderr, "benchdiff: gated metric %s %s missing from %s\n",
			gatedBench, gatedMetric, newPath)
		failed = true
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: %s %s regressed more than %.0f%%\n",
			gatedBench, gatedMetric, *threshold)
		os.Exit(1)
	}
}

// Command benchdiff compares two benchmark snapshots produced by
// cmd/benchjson and enforces the repository's throughput trajectory: the
// simulator's instruction rate must not silently regress between PRs.
//
// Usage:
//
//	benchdiff [-dir DIR] [-threshold PCT] [-strict] [old.json new.json]
//
// With explicit file arguments it diffs those two snapshots; with none it
// picks the two highest-numbered BENCH_<n>.json files in -dir (default ".").
// Every metric present in both snapshots is reported. A drop of more than
// -threshold percent (default 10) in the SimulationThroughput benchmark's
// Minstr/s is a hard failure (exit 1); regressions in other benchmarks —
// fleet and experiment benches dominated by scheduling noise — are warnings
// only, unless -strict promotes every over-threshold regression to a
// failure. Higher-is-better metrics (Minstr/s and friends) and
// lower-is-better ones (ns/op) are both handled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// entry mirrors cmd/benchjson's output element.
type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// key identifies one metric of one benchmark across snapshots.
type key struct {
	bench, metric string
}

// gatedBench is the benchmark whose throughput trajectory is load-bearing:
// PR 9's flattened timing core is only a win if it stays won.
const (
	gatedBench  = "BenchmarkSimulationThroughput"
	gatedMetric = "Minstr/s"
)

// lowerIsBetter reports whether a metric improves downward.
func lowerIsBetter(metric string) bool {
	switch metric {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

func load(path string) (map[key]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[key]float64{}
	for _, e := range entries {
		for name, v := range e.Metrics {
			m[key{e.Name, name}] = v
		}
	}
	return m, nil
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestPair returns the two highest-numbered BENCH_<n>.json paths in dir,
// oldest first.
func latestPair(dir string) (string, string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	type snap struct {
		n    int
		path string
	}
	var snaps []snap
	for _, p := range names {
		m := benchFile.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{n, p})
	}
	if len(snaps) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<n>.json snapshots in %s, found %d", dir, len(snaps))
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps[len(snaps)-2].path, snaps[len(snaps)-1].path, nil
}

// compare diffs every metric present in both snapshots. rows holds one
// rendered table line per shared metric in (bench, metric) order; failures
// holds one message per tripped gate — the gated throughput metric past
// threshold, any over-threshold regression when strict is set, and the gated
// metric going missing from the new snapshot.
func compare(oldM, newM map[key]float64, threshold float64, strict bool) (rows, failures []string) {
	keys := make([]key, 0, len(newM))
	for k := range newM {
		if _, ok := oldM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].metric < keys[j].metric
	})

	for _, k := range keys {
		ov, nv := oldM[k], newM[k]
		if ov == 0 {
			continue
		}
		deltaPct := (nv - ov) / ov * 100
		regressPct := deltaPct // higher is better: a drop is negative
		if lowerIsBetter(k.metric) {
			regressPct = -deltaPct
		}
		status := "ok"
		if regressPct < -threshold {
			gated := k.bench == gatedBench && k.metric == gatedMetric
			if gated || strict {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s %s regressed %.1f%% (threshold %.0f%%)",
					k.bench, k.metric, -regressPct, threshold))
			} else {
				status = "warn"
			}
		}
		rows = append(rows, fmt.Sprintf("  %-4s %-50s %-10s %12.4g -> %-12.4g (%+.1f%%)",
			status, k.bench, k.metric, ov, nv, deltaPct))
	}
	if _, ok := newM[key{gatedBench, gatedMetric}]; !ok {
		failures = append(failures, fmt.Sprintf("gated metric %s %s missing from the new snapshot",
			gatedBench, gatedMetric))
	}
	return rows, failures
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
	threshold := flag.Float64("threshold", 10, "max tolerated %% regression in the gated throughput metric")
	strict := flag.Bool("strict", false, "fail on any over-threshold regression, not just the gated metric")
	flag.Parse()

	var oldPath, newPath string
	var err error
	switch flag.NArg() {
	case 0:
		oldPath, newPath, err = latestPair(*dir)
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		err = fmt.Errorf("want zero or two file arguments, got %d", flag.NArg())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldM, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s -> %s\n", oldPath, newPath)
	rows, failures := compare(oldM, newM, *threshold, *strict)
	for _, row := range rows {
		fmt.Println(row)
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchdiff:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

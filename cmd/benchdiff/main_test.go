package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func mustLoad(t *testing.T, name string) map[key]float64 {
	t.Helper()
	m, err := load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// countStatus tallies rows whose status column matches want.
func countStatus(rows []string, want string) int {
	n := 0
	for _, r := range rows {
		if strings.HasPrefix(strings.TrimSpace(r), want+" ") {
			n++
		}
	}
	return n
}

// TestCompareRegression exercises BENCH_1 -> BENCH_2: the gated throughput
// drops 20% (FAIL), and every other shared metric regresses past the
// default threshold too (warn without -strict).
func TestCompareRegression(t *testing.T) {
	oldM, newM := mustLoad(t, "BENCH_1.json"), mustLoad(t, "BENCH_2.json")
	rows, failures := compare(oldM, newM, 10, false)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 shared metrics:\n%s", len(rows), strings.Join(rows, "\n"))
	}
	if len(failures) != 1 || !strings.Contains(failures[0], gatedBench) {
		t.Fatalf("want exactly the gated-metric failure, got %v", failures)
	}
	if got := countStatus(rows, "warn"); got != 2 {
		t.Fatalf("got %d warn rows, want 2 (ungated ns/op regressions):\n%s", got, strings.Join(rows, "\n"))
	}
}

// TestCompareStrictPromotesWarnings pins the -strict contract: the same pair
// turns every over-threshold regression into a failure and leaves no warns.
func TestCompareStrictPromotesWarnings(t *testing.T) {
	oldM, newM := mustLoad(t, "BENCH_1.json"), mustLoad(t, "BENCH_2.json")
	rows, failures := compare(oldM, newM, 10, true)
	if len(failures) != 3 {
		t.Fatalf("strict: got %d failures, want 3: %v", len(failures), failures)
	}
	if got := countStatus(rows, "warn"); got != 0 {
		t.Fatalf("strict: got %d warn rows, want 0:\n%s", got, strings.Join(rows, "\n"))
	}
	if got := countStatus(rows, "FAIL"); got != 3 {
		t.Fatalf("strict: got %d FAIL rows, want 3:\n%s", got, strings.Join(rows, "\n"))
	}
}

// TestCompareImprovement exercises BENCH_1 -> BENCH_3: everything improves,
// so even -strict reports nothing.
func TestCompareImprovement(t *testing.T) {
	oldM, newM := mustLoad(t, "BENCH_1.json"), mustLoad(t, "BENCH_3.json")
	rows, failures := compare(oldM, newM, 10, true)
	if len(failures) != 0 {
		t.Fatalf("improvement pair failed: %v", failures)
	}
	if got := countStatus(rows, "ok"); got != 3 {
		t.Fatalf("got %d ok rows, want 3:\n%s", got, strings.Join(rows, "\n"))
	}
}

// TestCompareMissingGatedBench pins the missing-bench gate: a new snapshot
// without the gated throughput metric fails even when nothing regressed.
func TestCompareMissingGatedBench(t *testing.T) {
	oldM, newM := mustLoad(t, "BENCH_1.json"), mustLoad(t, "missing.json")
	_, failures := compare(oldM, newM, 10, false)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("want exactly the missing-metric failure, got %v", failures)
	}
}

// TestLoadMalformed pins the exit-2 input path: a snapshot that is not a
// benchmark array reports a decode error naming the file.
func TestLoadMalformed(t *testing.T) {
	if _, err := load(filepath.Join("testdata", "malformed.json")); err == nil {
		t.Fatal("malformed snapshot loaded without error")
	} else if !strings.Contains(err.Error(), "malformed.json") {
		t.Fatalf("error does not name the file: %v", err)
	}
	if _, err := load(filepath.Join("testdata", "absent.json")); err == nil {
		t.Fatal("absent snapshot loaded without error")
	}
}

// TestLatestPair pins snapshot selection: the two highest-numbered
// BENCH_<n>.json files win, oldest first, and non-matching names are
// ignored.
func TestLatestPair(t *testing.T) {
	oldPath, newPath, err := latestPair("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(oldPath) != "BENCH_2.json" || filepath.Base(newPath) != "BENCH_3.json" {
		t.Fatalf("got pair (%s, %s), want (BENCH_2.json, BENCH_3.json)", oldPath, newPath)
	}
	if _, _, err := latestPair(t.TempDir()); err == nil {
		t.Fatal("empty dir produced a pair")
	}
}

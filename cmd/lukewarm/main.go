// Command lukewarm regenerates the paper's figures and tables from the
// simulator. Each subcommand corresponds to one figure/table (see DESIGN.md
// for the index); `all` runs everything in paper order.
//
// Usage:
//
//	lukewarm [-measure N] [-warmup N] [-funcs Auth-G,Email-P] [-jobs N] <experiment>
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5a fig5b fig6a fig6b
// fig8 fig9 fig10 fig11 fig12 fig13 table3 crrb compaction snapshot dynmeta
// baselines server scaling sched chaos cluster all. The -csv flag mirrors every table into
// machine-readable CSV files; -audit cross-checks every measured invocation
// against the simulator's conservation invariants. The extra `check`
// subcommand runs the differential-oracle and metamorphic-property
// validation battery (internal/check) instead of an experiment.
//
// Every experiment's measurements run as independent simulation cells on a
// worker pool (-jobs, default GOMAXPROCS) with a content-addressed result
// cache; tables are byte-identical for any -jobs value. -cache DIR persists
// the cache across runs, -progress streams per-cell progress to stderr, and
// -report FILE writes a JSON run report with per-experiment wall time, cell
// counts, cache hit rates and headline metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lukewarm"
)

func main() {
	measure := flag.Int("measure", 0, "measured invocations per configuration (0 = default)")
	warmup := flag.Int("warmup", 0, "warm-up invocations per configuration (0 = default)")
	noWarmup := flag.Bool("nowarmup", false, "run with zero warm-up invocations")
	funcs := flag.String("funcs", "", "comma-separated function subset (default: all 20)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	audit := flag.Bool("audit", false, "check conservation invariants on every measured invocation")
	seed := flag.Uint64("seed", 42, "fault-injection seed for the chaos experiment")
	jobs := flag.Int("jobs", 0, "simulation cells run concurrently (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persist the content-addressed result cache in this directory")
	progress := flag.Bool("progress", false, "stream per-cell progress lines to stderr")
	reportPath := flag.String("report", "", "write a JSON run report (wall time, cells, cache hits, headline metrics) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lukewarm:", err)
		os.Exit(1)
	}
	// exit flushes the profiles before terminating: every exit path below
	// this point must use it, or a profiled failing run writes no profile.
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}
	engCfg := lukewarm.EngineConfig{Jobs: *jobs, CacheDir: *cacheDir}
	if *progress {
		engCfg.Progress = os.Stderr
	}
	eng, err := lukewarm.NewEngine(engCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lukewarm:", err)
		exit(1)
	}
	opt := lukewarm.ExperimentOptions{
		Measure: *measure, Warmup: *warmup, NoWarmup: *noWarmup,
		Audit: *audit, Engine: eng,
	}
	if *funcs != "" {
		opt.Functions = strings.Split(*funcs, ",")
	}
	s := &session{
		p:    printer{csvDir: *csvDir},
		opt:  opt,
		eng:  eng,
		seed: *seed,
		rep:  &runReport{Jobs: eng.Jobs(), CacheDir: *cacheDir, Headline: map[string]float64{}},
	}

	name := flag.Arg(0)
	start := time.Now()
	runErr := s.run(name)
	s.finish(time.Since(start))
	if *reportPath != "" {
		if err := s.writeReport(*reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "lukewarm: report:", err)
			exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "lukewarm:", runErr)
		exit(1)
	}
	stopProfiles()
	fmt.Printf("(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
}

// startProfiles begins CPU profiling and arranges the exit-time heap
// profile. The returned stop function is idempotent and must run on every
// exit path once profiling has started; either path may be empty.
func startProfiles(cpuPath, memPath string) (func(), error) {
	stopCPU := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		stopCPU()
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lukewarm: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lukewarm: memprofile:", err)
		}
	}, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `lukewarm - regenerate the figures and tables of
"Lukewarm Serverless Functions: Characterization and Optimization" (ISCA'22)

usage: lukewarm [flags] <experiment>

experiments:
  table1, table2        configuration tables
  fig1                  CPI vs inter-arrival time
  fig2, fig3, fig4      Top-Down characterization
  fig5a, fig5b          L2 / LLC MPKI breakdowns
  fig6a, fig6b          instruction footprints and commonality
  fig8                  metadata size vs region size
  fig9                  speedup vs metadata budget
  fig10, fig11, fig12   Jukebox performance, coverage, bandwidth
  fig13                 comparison with PIF
  table3                Skylake vs Broadwell MPKI reductions
  crrb                  CRRB-size sensitivity (Sec. 5.1)
  compaction            virtual-vs-physical metadata ablation (Sec. 3.3)
  snapshot              snapshot/cold-boot replay extension (Sec. 3.4.2)
  dynmeta               per-function metadata sizing extension
  baselines             Jukebox vs next-line and RECAP-style restoration (Sec. 6)
  server                system-level Poisson-traffic simulation
  scaling               multi-core scaling under saturating traffic
  sched                 placement and keep-alive policy sweep
  chaos                 fault-injection sweep with graceful-degradation checks
  cluster               fault-tolerant fleet sweep: nodes x failure rate x placement
  coldstart             REAP page-prefetch vs Jukebox vs PIF across start conditions
  prewarm               predictive pre-warm sweep: forecaster x lead x arrival shape
  check                 differential-oracle + metamorphic-property validation battery
  all                   everything above, in paper order

flags:
`)
	flag.PrintDefaults()
}

// printer renders tables to stdout and, when csvDir is set, mirrors each
// one into <csvDir>/<slug>.csv.
type printer struct {
	csvDir string
}

func (p printer) show(t *lukewarm.Table) error {
	fmt.Println(t)
	if p.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(p.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(p.csvDir, t.Slug()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// tabler is any experiment result with a single canonical table.
type tabler interface {
	Table() *lukewarm.Table
}

// render accepts a runner's (result, error) pair directly —
// p.render(lukewarm.Fig8(opt, 16)) — and shows the result's table.
func (p printer) render(r tabler, err error) error {
	if err != nil {
		return err
	}
	return p.show(r.Table())
}

// reportEntry is one experiment's telemetry in the run report.
type reportEntry struct {
	Experiment   string  `json:"experiment"`
	WallMs       float64 `json:"wall_ms"`
	Cells        uint64  `json:"cells"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// runReport is the -report JSON document.
type runReport struct {
	Jobs        int           `json:"jobs"`
	CacheDir    string        `json:"cache_dir,omitempty"`
	Experiments []reportEntry `json:"experiments"`
	TotalWallMs float64       `json:"total_wall_ms"`
	// CellWallMs sums per-cell wall time across workers; it exceeds
	// TotalWallMs when cells ran concurrently.
	CellWallMs     float64            `json:"cell_wall_ms"`
	TotalCells     uint64             `json:"total_cells"`
	TotalCacheHits uint64             `json:"total_cache_hits"`
	CacheHitRate   float64            `json:"cache_hit_rate"`
	Headline       map[string]float64 `json:"headline,omitempty"`
}

// session threads one CLI invocation's shared state: the printer, the
// experiment options (carrying the shared engine), and the accumulating run
// report.
type session struct {
	p    printer
	opt  lukewarm.ExperimentOptions
	eng  *lukewarm.Engine
	seed uint64
	rep  *runReport
}

// step runs one experiment under its name: it labels the engine's progress
// lines, times the run, and records the engine-counter deltas in the report.
func (s *session) step(name string, fn func() error) error {
	s.eng.SetPhase(name)
	before := s.eng.Stats()
	start := time.Now()
	err := fn()
	after := s.eng.Stats()
	e := reportEntry{
		Experiment: name,
		WallMs:     float64(time.Since(start).Microseconds()) / 1000,
		Cells:      after.Cells - before.Cells,
		CacheHits:  after.CacheHits - before.CacheHits,
	}
	if e.Cells > 0 {
		e.CacheHitRate = float64(e.CacheHits) / float64(e.Cells)
	}
	s.rep.Experiments = append(s.rep.Experiments, e)
	return err
}

// finish seals the report's totals.
func (s *session) finish(wall time.Duration) {
	st := s.eng.Stats()
	s.rep.TotalWallMs = float64(wall.Microseconds()) / 1000
	s.rep.CellWallMs = float64(st.CellWall.Microseconds()) / 1000
	s.rep.TotalCells = st.Cells
	s.rep.TotalCacheHits = st.CacheHits
	if st.Cells > 0 {
		s.rep.CacheHitRate = float64(st.CacheHits) / float64(st.Cells)
	}
}

// writeReport marshals the run report to path.
func (s *session) writeReport(path string) error {
	data, err := json.MarshalIndent(s.rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// characterize runs the Fig. 2-5 experiment and records its headline metric.
func (s *session) characterize() (lukewarm.CharacterizationResult, error) {
	char, err := lukewarm.Characterize(s.opt)
	if err == nil {
		s.rep.Headline["fig2_mean_cpi_uplift_pct"] = char.MeanUplift() * 100
	}
	return char, err
}

// performance runs the Fig. 10-12 experiment and records its headline metric.
func (s *session) performance() (lukewarm.PerfResult, error) {
	perf, err := lukewarm.Performance(s.opt)
	if err == nil {
		jb, _ := perf.GeomeanSpeedups()
		s.rep.Headline["fig10_geomean_speedup_pct"] = jb
	}
	return perf, err
}

// runSched executes the scheduling-policy sweep, renders its three tables,
// and records the headline: the best placement policy's geomean-CPI
// improvement over the earliest-available baseline.
func (s *session) runSched() error {
	r, err := lukewarm.Sched(s.opt)
	if err != nil {
		return err
	}
	_, delta := r.BestPolicyCPIDeltaPct()
	s.rep.Headline["sched_best_policy_cpi_delta_pct"] = delta
	for _, t := range []*lukewarm.Table{r.Table(), r.KeepAliveTable(), r.PerFuncTable()} {
		if err := s.p.show(t); err != nil {
			return err
		}
	}
	return nil
}

// runChaos executes the fault-injection sweep; any FAIL cell makes the
// command exit non-zero after the full matrix has been rendered.
func (s *session) runChaos() error {
	r, err := lukewarm.Chaos(s.opt, s.seed)
	if err != nil {
		return err
	}
	if err := s.p.show(r.Table()); err != nil {
		return err
	}
	if n := r.Failures(); n > 0 {
		return fmt.Errorf("chaos: %d of %d cells failed", n, len(r.Cells))
	}
	return nil
}

// runCluster executes the fleet simulation sweep, renders both tables, and
// records the headlines: availability of the largest fleet under heavy
// faults, and the hedging compute bill at the same point.
func (s *session) runCluster() error {
	r, err := lukewarm.Cluster(s.opt)
	if err != nil {
		return err
	}
	s.rep.Headline["cluster_heavy_availability_pct"] = r.HeavyAvailabilityPct()
	s.rep.Headline["cluster_wasted_hedge_pct"] = r.WastedHedgePct()
	for _, t := range []*lukewarm.Table{r.Table(), r.LatencyTable()} {
		if err := s.p.show(t); err != nil {
			return err
		}
	}
	return nil
}

// runColdstart executes the cold-start comparator, renders its three tables,
// and records the headlines: the combined REAP+Jukebox cold-band speedup and
// the IAT at which Jukebox alone overtakes REAP alone.
func (s *session) runColdstart() error {
	r, err := lukewarm.Coldstart(s.opt)
	if err != nil {
		return err
	}
	s.rep.Headline["coldstart_reapjb_cold_speedup_pct"] = r.ColdSpeedupPct()
	s.rep.Headline["coldstart_crossover_iat_ms"] = r.CrossoverIATms
	for _, t := range []*lukewarm.Table{r.Table(), r.CrossoverTable(), r.StalenessTable()} {
		if err := s.p.show(t); err != nil {
			return err
		}
	}
	return nil
}

// runPrewarm executes the predictive pre-warm sweep, renders its table, and
// records the headlines: the oracle forecaster's best lukewarm-penalty
// recovery (where and how much), and the histogram forecaster's wasted
// pre-warm fraction on the adversarial bursty shape.
func (s *session) runPrewarm() error {
	r, err := lukewarm.Prewarm(s.opt)
	if err != nil {
		return err
	}
	shape, lead, pct := r.OracleBestPenaltyRemovedPct()
	s.rep.Headline["prewarm_oracle_best_penalty_removed_pct"] = pct
	s.rep.Headline["prewarm_oracle_best_lead_ms"] = lead
	s.rep.Headline["prewarm_bursty_histpeak_wasted_frac"] = r.BurstyHistpeakWastedFraction()
	fmt.Printf("oracle best: %s at lead %g ms removes %.0f%% of the lukewarm CPI penalty\n",
		shape, lead, pct)
	return s.p.show(r.Table())
}

// runCheck executes the differential-oracle and metamorphic-property
// validation battery; any FAIL row makes the command exit non-zero after the
// full report has been rendered.
func (s *session) runCheck() error {
	rep := lukewarm.Check()
	if err := s.p.show(rep.Table()); err != nil {
		return err
	}
	return rep.Err()
}

// run dispatches one experiment by name.
func (s *session) run(name string) error {
	p, opt := s.p, s.opt
	switch name {
	case "table1":
		return p.show(lukewarm.Table1())
	case "table2":
		return p.show(lukewarm.Table2())
	case "fig1":
		return s.step(name, func() error { return p.render(lukewarm.Fig1(opt)) })
	case "fig2", "fig3", "fig4", "fig5a", "fig5b":
		return s.step(name, func() error {
			char, err := s.characterize()
			if err != nil {
				return err
			}
			switch name {
			case "fig2":
				return p.show(char.Fig2Table())
			case "fig3":
				return p.show(char.Fig3Table())
			case "fig4":
				return p.show(char.Fig4Table())
			case "fig5a":
				return p.show(char.Fig5aTable())
			default:
				return p.show(char.Fig5bTable())
			}
		})
	case "fig6a", "fig6b":
		return s.step(name, func() error {
			fp, err := lukewarm.Footprints(opt, 25)
			if err != nil {
				return err
			}
			if name == "fig6a" {
				return p.show(fp.Fig6aTable())
			}
			return p.show(fp.Fig6bTable())
		})
	case "fig8":
		return s.step(name, func() error { return p.render(lukewarm.Fig8(opt, 16)) })
	case "fig9":
		return s.step(name, func() error { return p.render(lukewarm.Fig9(opt)) })
	case "fig10", "fig11", "fig12":
		return s.step(name, func() error {
			perf, err := s.performance()
			if err != nil {
				return err
			}
			switch name {
			case "fig10":
				return p.show(perf.Fig10Table())
			case "fig11":
				return p.show(perf.Fig11Table())
			default:
				return p.show(perf.Fig12Table())
			}
		})
	case "fig13":
		return s.step(name, func() error { return p.render(lukewarm.Fig13(opt)) })
	case "table3":
		return s.step(name, func() error { return p.render(lukewarm.Table3(opt)) })
	case "crrb":
		return s.step(name, func() error { return p.render(lukewarm.CRRBAblation(opt)) })
	case "compaction":
		return s.step(name, func() error { return p.render(lukewarm.Compaction(opt)) })
	case "snapshot":
		return s.step(name, func() error { return p.render(lukewarm.Snapshot(opt)) })
	case "dynmeta":
		return s.step(name, func() error { return p.render(lukewarm.DynamicMetadata(opt)) })
	case "baselines":
		return s.step(name, func() error { return p.render(lukewarm.Baselines(opt)) })
	case "server":
		return s.step(name, func() error { return p.render(lukewarm.ServerSim(opt)) })
	case "scaling":
		return s.step(name, func() error { return p.render(lukewarm.Scaling(opt)) })
	case "sched":
		return s.step(name, s.runSched)
	case "chaos":
		return s.step(name, s.runChaos)
	case "cluster":
		return s.step(name, s.runCluster)
	case "coldstart":
		return s.step(name, s.runColdstart)
	case "prewarm":
		return s.step(name, s.runPrewarm)
	case "check":
		return s.runCheck()
	case "all":
		return s.runAll()
	default:
		return fmt.Errorf("unknown experiment %q (run with no arguments for the list)", name)
	}
}

// runAll regenerates everything, sharing runs between figures that come
// from the same experiment (and, through the engine's result cache,
// identical cells between experiments).
func (s *session) runAll() error {
	p, opt := s.p, s.opt
	if err := p.show(lukewarm.Table1()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Table2()); err != nil {
		return err
	}
	steps := []struct {
		name string
		fn   func() error
	}{
		{"fig1", func() error { return p.render(lukewarm.Fig1(opt)) }},
		{"fig2-5", func() error {
			char, err := s.characterize()
			if err != nil {
				return err
			}
			for _, t := range []*lukewarm.Table{
				char.Fig2Table(), char.Fig3Table(), char.Fig4Table(),
				char.Fig5aTable(), char.Fig5bTable(),
			} {
				if err := p.show(t); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig6", func() error {
			fp, err := lukewarm.Footprints(opt, 25)
			if err != nil {
				return err
			}
			if err := p.show(fp.Fig6aTable()); err != nil {
				return err
			}
			return p.show(fp.Fig6bTable())
		}},
		{"fig8", func() error { return p.render(lukewarm.Fig8(opt, 16)) }},
		{"fig9", func() error { return p.render(lukewarm.Fig9(opt)) }},
		{"fig10-12", func() error {
			perf, err := s.performance()
			if err != nil {
				return err
			}
			for _, t := range []*lukewarm.Table{perf.Fig10Table(), perf.Fig11Table(), perf.Fig12Table()} {
				if err := p.show(t); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig13", func() error { return p.render(lukewarm.Fig13(opt)) }},
		{"table3", func() error { return p.render(lukewarm.Table3(opt)) }},
		{"crrb", func() error { return p.render(lukewarm.CRRBAblation(opt)) }},
		{"compaction", func() error { return p.render(lukewarm.Compaction(opt)) }},
		{"snapshot", func() error { return p.render(lukewarm.Snapshot(opt)) }},
		{"dynmeta", func() error { return p.render(lukewarm.DynamicMetadata(opt)) }},
		{"baselines", func() error { return p.render(lukewarm.Baselines(opt)) }},
		{"server", func() error { return p.render(lukewarm.ServerSim(opt)) }},
		{"scaling", func() error { return p.render(lukewarm.Scaling(opt)) }},
		{"sched", s.runSched},
		{"chaos", s.runChaos},
		{"cluster", s.runCluster},
		{"coldstart", s.runColdstart},
		{"prewarm", s.runPrewarm},
	}
	for _, st := range steps {
		if err := s.step(st.name, st.fn); err != nil {
			return err
		}
	}
	return nil
}

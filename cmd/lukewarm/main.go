// Command lukewarm regenerates the paper's figures and tables from the
// simulator. Each subcommand corresponds to one figure/table (see DESIGN.md
// for the index); `all` runs everything in paper order.
//
// Usage:
//
//	lukewarm [-measure N] [-warmup N] [-funcs Auth-G,Email-P] <experiment>
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5a fig5b fig6a fig6b
// fig8 fig9 fig10 fig11 fig12 fig13 table3 crrb compaction snapshot dynmeta
// baselines server scaling chaos all. The -csv flag mirrors every table into
// machine-readable CSV files; -audit cross-checks every measured invocation
// against the simulator's conservation invariants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lukewarm"
)

func main() {
	measure := flag.Int("measure", 0, "measured invocations per configuration (0 = default)")
	warmup := flag.Int("warmup", 0, "warm-up invocations per configuration (0 = default)")
	funcs := flag.String("funcs", "", "comma-separated function subset (default: all 20)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	audit := flag.Bool("audit", false, "check conservation invariants on every measured invocation")
	seed := flag.Uint64("seed", 42, "fault-injection seed for the chaos experiment")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	opt := lukewarm.ExperimentOptions{Measure: *measure, Warmup: *warmup, Audit: *audit}
	if *funcs != "" {
		opt.Functions = strings.Split(*funcs, ",")
	}
	p := printer{csvDir: *csvDir}

	name := flag.Arg(0)
	start := time.Now()
	if err := run(name, opt, p, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "lukewarm:", err)
		os.Exit(1)
	}
	fmt.Printf("(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `lukewarm - regenerate the figures and tables of
"Lukewarm Serverless Functions: Characterization and Optimization" (ISCA'22)

usage: lukewarm [flags] <experiment>

experiments:
  table1, table2        configuration tables
  fig1                  CPI vs inter-arrival time
  fig2, fig3, fig4      Top-Down characterization
  fig5a, fig5b          L2 / LLC MPKI breakdowns
  fig6a, fig6b          instruction footprints and commonality
  fig8                  metadata size vs region size
  fig9                  speedup vs metadata budget
  fig10, fig11, fig12   Jukebox performance, coverage, bandwidth
  fig13                 comparison with PIF
  table3                Skylake vs Broadwell MPKI reductions
  crrb                  CRRB-size sensitivity (Sec. 5.1)
  compaction            virtual-vs-physical metadata ablation (Sec. 3.3)
  snapshot              snapshot/cold-boot replay extension (Sec. 3.4.2)
  dynmeta               per-function metadata sizing extension
  baselines             Jukebox vs next-line and RECAP-style restoration (Sec. 6)
  server                system-level Poisson-traffic simulation
  scaling               multi-core scaling under saturating traffic
  chaos                 fault-injection sweep with graceful-degradation checks
  all                   everything above, in paper order

flags:
`)
	flag.PrintDefaults()
}

// printer renders tables to stdout and, when csvDir is set, mirrors each
// one into <csvDir>/<slug>.csv.
type printer struct {
	csvDir string
}

func (p printer) show(t *lukewarm.Table) error {
	fmt.Println(t)
	if p.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(p.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(p.csvDir, t.Slug()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// tabler is any experiment result with a single canonical table.
type tabler interface {
	Table() *lukewarm.Table
}

// render accepts a runner's (result, error) pair directly —
// p.render(lukewarm.Fig8(opt, 16)) — and shows the result's table.
func (p printer) render(r tabler, err error) error {
	if err != nil {
		return err
	}
	return p.show(r.Table())
}

// runChaos executes the fault-injection sweep; any FAIL cell makes the
// command exit non-zero after the full matrix has been rendered.
func runChaos(opt lukewarm.ExperimentOptions, p printer, seed uint64) error {
	r, err := lukewarm.Chaos(opt, seed)
	if err != nil {
		return err
	}
	if err := p.show(r.Table()); err != nil {
		return err
	}
	if n := r.Failures(); n > 0 {
		return fmt.Errorf("chaos: %d of %d cells failed", n, len(r.Cells))
	}
	return nil
}

// run dispatches one experiment by name.
func run(name string, opt lukewarm.ExperimentOptions, p printer, seed uint64) error {
	switch name {
	case "table1":
		return p.show(lukewarm.Table1())
	case "table2":
		return p.show(lukewarm.Table2())
	case "fig1":
		return p.render(lukewarm.Fig1(opt))
	case "fig2", "fig3", "fig4", "fig5a", "fig5b":
		char, err := lukewarm.Characterize(opt)
		if err != nil {
			return err
		}
		switch name {
		case "fig2":
			return p.show(char.Fig2Table())
		case "fig3":
			return p.show(char.Fig3Table())
		case "fig4":
			return p.show(char.Fig4Table())
		case "fig5a":
			return p.show(char.Fig5aTable())
		default:
			return p.show(char.Fig5bTable())
		}
	case "fig6a", "fig6b":
		fp, err := lukewarm.Footprints(opt, 25)
		if err != nil {
			return err
		}
		if name == "fig6a" {
			return p.show(fp.Fig6aTable())
		}
		return p.show(fp.Fig6bTable())
	case "fig8":
		return p.render(lukewarm.Fig8(opt, 16))
	case "fig9":
		return p.render(lukewarm.Fig9(opt))
	case "fig10", "fig11", "fig12":
		perf, err := lukewarm.Performance(opt)
		if err != nil {
			return err
		}
		switch name {
		case "fig10":
			return p.show(perf.Fig10Table())
		case "fig11":
			return p.show(perf.Fig11Table())
		default:
			return p.show(perf.Fig12Table())
		}
	case "fig13":
		return p.render(lukewarm.Fig13(opt))
	case "table3":
		return p.render(lukewarm.Table3(opt))
	case "crrb":
		return p.render(lukewarm.CRRBAblation(opt))
	case "compaction":
		return p.render(lukewarm.Compaction(opt))
	case "snapshot":
		return p.render(lukewarm.Snapshot(opt))
	case "dynmeta":
		return p.render(lukewarm.DynamicMetadata(opt))
	case "baselines":
		return p.render(lukewarm.Baselines(opt))
	case "server":
		return p.render(lukewarm.ServerSim(opt))
	case "scaling":
		return p.render(lukewarm.Scaling(opt))
	case "chaos":
		return runChaos(opt, p, seed)
	case "all":
		return runAll(opt, p, seed)
	default:
		return fmt.Errorf("unknown experiment %q (run with no arguments for the list)", name)
	}
}

// runAll regenerates everything, sharing runs between figures that come
// from the same experiment.
func runAll(opt lukewarm.ExperimentOptions, p printer, seed uint64) error {
	if err := p.show(lukewarm.Table1()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Table2()); err != nil {
		return err
	}
	if err := p.render(lukewarm.Fig1(opt)); err != nil {
		return err
	}

	char, err := lukewarm.Characterize(opt)
	if err != nil {
		return err
	}
	for _, t := range []*lukewarm.Table{
		char.Fig2Table(), char.Fig3Table(), char.Fig4Table(),
		char.Fig5aTable(), char.Fig5bTable(),
	} {
		if err := p.show(t); err != nil {
			return err
		}
	}

	fp, err := lukewarm.Footprints(opt, 25)
	if err != nil {
		return err
	}
	if err := p.show(fp.Fig6aTable()); err != nil {
		return err
	}
	if err := p.show(fp.Fig6bTable()); err != nil {
		return err
	}

	if err := p.render(lukewarm.Fig8(opt, 16)); err != nil {
		return err
	}
	if err := p.render(lukewarm.Fig9(opt)); err != nil {
		return err
	}

	perf, err := lukewarm.Performance(opt)
	if err != nil {
		return err
	}
	for _, t := range []*lukewarm.Table{perf.Fig10Table(), perf.Fig11Table(), perf.Fig12Table()} {
		if err := p.show(t); err != nil {
			return err
		}
	}

	if err := p.render(lukewarm.Fig13(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.Table3(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.CRRBAblation(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.Compaction(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.Snapshot(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.DynamicMetadata(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.Baselines(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.ServerSim(opt)); err != nil {
		return err
	}
	if err := p.render(lukewarm.Scaling(opt)); err != nil {
		return err
	}
	return runChaos(opt, p, seed)
}

// Command lukewarm regenerates the paper's figures and tables from the
// simulator. Each subcommand corresponds to one figure/table (see DESIGN.md
// for the index); `all` runs everything in paper order.
//
// Usage:
//
//	lukewarm [-measure N] [-warmup N] [-funcs Auth-G,Email-P] <experiment>
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5a fig5b fig6a fig6b
// fig8 fig9 fig10 fig11 fig12 fig13 table3 crrb compaction snapshot dynmeta
// baselines server scaling all. The -csv flag mirrors every table into
// machine-readable CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lukewarm"
)

func main() {
	measure := flag.Int("measure", 0, "measured invocations per configuration (0 = default)")
	warmup := flag.Int("warmup", 0, "warm-up invocations per configuration (0 = default)")
	funcs := flag.String("funcs", "", "comma-separated function subset (default: all 20)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	opt := lukewarm.ExperimentOptions{Measure: *measure, Warmup: *warmup}
	if *funcs != "" {
		opt.Functions = strings.Split(*funcs, ",")
	}
	p := printer{csvDir: *csvDir}

	name := flag.Arg(0)
	start := time.Now()
	if err := run(name, opt, p); err != nil {
		fmt.Fprintln(os.Stderr, "lukewarm:", err)
		os.Exit(1)
	}
	fmt.Printf("(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `lukewarm - regenerate the figures and tables of
"Lukewarm Serverless Functions: Characterization and Optimization" (ISCA'22)

usage: lukewarm [flags] <experiment>

experiments:
  table1, table2        configuration tables
  fig1                  CPI vs inter-arrival time
  fig2, fig3, fig4      Top-Down characterization
  fig5a, fig5b          L2 / LLC MPKI breakdowns
  fig6a, fig6b          instruction footprints and commonality
  fig8                  metadata size vs region size
  fig9                  speedup vs metadata budget
  fig10, fig11, fig12   Jukebox performance, coverage, bandwidth
  fig13                 comparison with PIF
  table3                Skylake vs Broadwell MPKI reductions
  crrb                  CRRB-size sensitivity (Sec. 5.1)
  compaction            virtual-vs-physical metadata ablation (Sec. 3.3)
  snapshot              snapshot/cold-boot replay extension (Sec. 3.4.2)
  dynmeta               per-function metadata sizing extension
  baselines             Jukebox vs next-line and RECAP-style restoration (Sec. 6)
  server                system-level Poisson-traffic simulation
  scaling               multi-core scaling under saturating traffic
  all                   everything above, in paper order

flags:
`)
	flag.PrintDefaults()
}

// printer renders tables to stdout and, when csvDir is set, mirrors each
// one into <csvDir>/<slug>.csv.
type printer struct {
	csvDir string
}

func (p printer) show(t *lukewarm.Table) error {
	fmt.Println(t)
	if p.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(p.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(p.csvDir, t.Slug()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// run dispatches one experiment by name.
func run(name string, opt lukewarm.ExperimentOptions, p printer) error {
	switch name {
	case "table1":
		if err := p.show(lukewarm.Table1()); err != nil {
			return err
		}
	case "table2":
		if err := p.show(lukewarm.Table2()); err != nil {
			return err
		}
	case "fig1":
		if err := p.show(lukewarm.Fig1(opt).Table()); err != nil {
			return err
		}
	case "fig2":
		if err := p.show(lukewarm.Characterize(opt).Fig2Table()); err != nil {
			return err
		}
	case "fig3":
		if err := p.show(lukewarm.Characterize(opt).Fig3Table()); err != nil {
			return err
		}
	case "fig4":
		if err := p.show(lukewarm.Characterize(opt).Fig4Table()); err != nil {
			return err
		}
	case "fig5a":
		if err := p.show(lukewarm.Characterize(opt).Fig5aTable()); err != nil {
			return err
		}
	case "fig5b":
		if err := p.show(lukewarm.Characterize(opt).Fig5bTable()); err != nil {
			return err
		}
	case "fig6a":
		if err := p.show(lukewarm.Footprints(opt, 25).Fig6aTable()); err != nil {
			return err
		}
	case "fig6b":
		if err := p.show(lukewarm.Footprints(opt, 25).Fig6bTable()); err != nil {
			return err
		}
	case "fig8":
		if err := p.show(lukewarm.Fig8(opt, 16).Table()); err != nil {
			return err
		}
	case "fig9":
		if err := p.show(lukewarm.Fig9(opt).Table()); err != nil {
			return err
		}
	case "fig10":
		if err := p.show(lukewarm.Performance(opt).Fig10Table()); err != nil {
			return err
		}
	case "fig11":
		if err := p.show(lukewarm.Performance(opt).Fig11Table()); err != nil {
			return err
		}
	case "fig12":
		if err := p.show(lukewarm.Performance(opt).Fig12Table()); err != nil {
			return err
		}
	case "fig13":
		if err := p.show(lukewarm.Fig13(opt).Table()); err != nil {
			return err
		}
	case "table3":
		if err := p.show(lukewarm.Table3(opt).Table()); err != nil {
			return err
		}
	case "crrb":
		if err := p.show(lukewarm.CRRBAblation(opt).Table()); err != nil {
			return err
		}
	case "compaction":
		if err := p.show(lukewarm.Compaction(opt).Table()); err != nil {
			return err
		}
	case "snapshot":
		if err := p.show(lukewarm.Snapshot(opt).Table()); err != nil {
			return err
		}
	case "dynmeta":
		if err := p.show(lukewarm.DynamicMetadata(opt).Table()); err != nil {
			return err
		}
	case "baselines":
		if err := p.show(lukewarm.Baselines(opt).Table()); err != nil {
			return err
		}
	case "server":
		if err := p.show(lukewarm.ServerSim(opt).Table()); err != nil {
			return err
		}
	case "scaling":
		if err := p.show(lukewarm.Scaling(opt).Table()); err != nil {
			return err
		}
	case "all":
		return runAll(opt, p)
	default:
		return fmt.Errorf("unknown experiment %q (run with no arguments for the list)", name)
	}
	return nil
}

// runAll regenerates everything, sharing runs between figures that come
// from the same experiment.
func runAll(opt lukewarm.ExperimentOptions, p printer) error {
	if err := p.show(lukewarm.Table1()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Table2()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Fig1(opt).Table()); err != nil {
		return err
	}

	char := lukewarm.Characterize(opt)
	if err := p.show(char.Fig2Table()); err != nil {
		return err
	}
	if err := p.show(char.Fig3Table()); err != nil {
		return err
	}
	if err := p.show(char.Fig4Table()); err != nil {
		return err
	}
	if err := p.show(char.Fig5aTable()); err != nil {
		return err
	}
	if err := p.show(char.Fig5bTable()); err != nil {
		return err
	}

	fp := lukewarm.Footprints(opt, 25)
	if err := p.show(fp.Fig6aTable()); err != nil {
		return err
	}
	if err := p.show(fp.Fig6bTable()); err != nil {
		return err
	}

	if err := p.show(lukewarm.Fig8(opt, 16).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Fig9(opt).Table()); err != nil {
		return err
	}

	perf := lukewarm.Performance(opt)
	if err := p.show(perf.Fig10Table()); err != nil {
		return err
	}
	if err := p.show(perf.Fig11Table()); err != nil {
		return err
	}
	if err := p.show(perf.Fig12Table()); err != nil {
		return err
	}

	if err := p.show(lukewarm.Fig13(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Table3(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.CRRBAblation(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Compaction(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Snapshot(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.DynamicMetadata(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Baselines(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.ServerSim(opt).Table()); err != nil {
		return err
	}
	if err := p.show(lukewarm.Scaling(opt).Table()); err != nil {
		return err
	}
	return nil
}

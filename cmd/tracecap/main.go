// Command tracecap captures, inspects, and re-simulates instruction traces
// in the repository's compact binary format (see internal/trace).
//
// Usage:
//
//	tracecap capture -fn Auth-G -inv 0 -o auth.lwt
//	tracecap info auth.lwt
//	tracecap run [-platform skylake|broadwell] [-lukewarm] auth.lwt
package main

import (
	"flag"
	"fmt"
	"os"

	"lukewarm"
	"lukewarm/internal/cpu"
	"lukewarm/internal/program"
	"lukewarm/internal/trace"
	"lukewarm/internal/vm"
	"lukewarm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "capture":
		err = capture(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `tracecap - capture, inspect and re-simulate instruction traces

subcommands:
  capture -fn <function> [-inv N] -o <file>   capture one invocation
  info <file>                                 decode and summarize a trace
  run [-platform P] [-lukewarm] <file>        simulate a trace`)
}

func capture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	fn := fs.String("fn", "Auth-G", "function name (see `lukewarm table2`)")
	inv := fs.Uint64("inv", 0, "invocation id")
	out := fs.String("o", "", "output file")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("capture needs -o <file>")
	}
	w, err := workload.ByName(*fn)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := trace.Capture(w.Program, *inv, f)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("captured %s invocation %d: %d instructions, %d bytes (%.2f B/instr)\n",
		*fn, *inv, n, st.Size(), float64(st.Size())/float64(n))
	return nil
}

func info(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs exactly one trace file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var ops [4]uint64
	var taken, blocks uint64
	var lastBlk uint64 = ^uint64(0)
	footprint := map[uint64]struct{}{}
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		ops[in.Op]++
		if in.Op == program.OpBranch && in.Taken {
			taken++
		}
		if blk := in.VAddr &^ 63; blk != lastBlk {
			lastBlk = blk
			blocks++
			footprint[blk] = struct{}{}
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("decoding: %w", err)
	}
	total := r.Count()
	fmt.Printf("instructions: %d\n", total)
	fmt.Printf("  plain:  %d (%.1f%%)\n", ops[program.OpPlain], pct(ops[program.OpPlain], total))
	fmt.Printf("  loads:  %d (%.1f%%)\n", ops[program.OpLoad], pct(ops[program.OpLoad], total))
	fmt.Printf("  stores: %d (%.1f%%)\n", ops[program.OpStore], pct(ops[program.OpStore], total))
	fmt.Printf("  branch: %d (%.1f%%), %d taken\n", ops[program.OpBranch], pct(ops[program.OpBranch], total), taken)
	fmt.Printf("code blocks executed: %d, unique footprint: %d blocks (%.0f KB)\n",
		blocks, len(footprint), float64(len(footprint))*64/1024)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	platform := fs.String("platform", "skylake", "skylake or broadwell")
	luke := fs.Bool("lukewarm", true, "flush microarchitectural state before the run")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run needs exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var cfg cpu.Config
	switch *platform {
	case "skylake":
		cfg = cpu.SkylakeConfig()
	case "broadwell":
		cfg = cpu.BroadwellConfig()
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}
	c := cpu.NewCore(cfg)
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	if *luke {
		c.FlushMicroarch()
	}
	res := c.RunInvocation(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("decoding during run: %w", err)
	}
	fmt.Printf("%s, %s: %d instructions in %d cycles\n", fs.Arg(0), cfg.Name, res.Instrs, res.Cycles)
	fmt.Printf("CPI %.3f  [retiring %.2f, fetch-lat %.2f, fetch-bw %.2f, bad-spec %.2f, backend %.2f]\n",
		res.CPI(),
		res.Stack.CPIOf(lukewarm.Retiring),
		res.Stack.CPIOf(lukewarm.FetchLatency),
		res.Stack.CPIOf(lukewarm.FetchBandwidth),
		res.Stack.CPIOf(lukewarm.BadSpeculation),
		res.Stack.CPIOf(lukewarm.BackendBound))
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

package lukewarm

import (
	"errors"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	srv := NewServer(ServerConfig{})
	fn, err := FunctionByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	inst := srv.Deploy(fn)
	warm := srv.RunReference(inst, 2)
	luke := srv.RunLukewarm(inst, 2)
	if luke.CPI() <= warm.CPI() {
		t.Errorf("lukewarm CPI %.3f not above warm %.3f", luke.CPI(), warm.CPI())
	}

	jb := DefaultJukeboxConfig()
	srv2 := NewServer(ServerConfig{Jukebox: &jb})
	inst2 := srv2.Deploy(fn)
	fast := srv2.RunLukewarm(inst2, 3)
	if fast.Cycles >= luke.Cycles {
		t.Errorf("Jukebox did not speed up the lukewarm run")
	}
	if inst2.Jukebox.MetadataFootprintBytes() != 32<<10 {
		t.Errorf("metadata footprint = %d", inst2.Jukebox.MetadataFootprintBytes())
	}
}

func TestFacadeSuite(t *testing.T) {
	if got := len(Suite()); got != 20 {
		t.Errorf("Suite = %d functions", got)
	}
	if got := len(FunctionNames()); got != 20 {
		t.Errorf("FunctionNames = %d", got)
	}
	if _, err := FunctionByName("definitely-not-a-function"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFacadeConfigs(t *testing.T) {
	if SkylakeConfig().Hier.L2.SizeBytes <= BroadwellConfig().Hier.L2.SizeBytes {
		t.Error("platform configs inverted")
	}
	if CharacterizationConfig().Hier.LLC.SizeBytes <= BroadwellConfig().Hier.LLC.SizeBytes {
		t.Error("characterization LLC not enlarged")
	}
	if DefaultJukeboxConfig().RegionSizeBytes != 1024 {
		t.Error("default region size not 1KB")
	}
	if !IdealPIFConfig().Persist || DefaultPIFConfig().Persist {
		t.Error("PIF persistence flags wrong")
	}
}

func TestFacadeCustomProgram(t *testing.T) {
	p, err := NewProgram(ProgramConfig{
		Name: "custom", Seed: 9, CodeKB: 64, DynamicInstrs: 40_000,
		CoreFrac: 0.9, OptionalProb: 0.8, InstrPerLine: 16,
		LoadFrac: 0.2, StoreFrac: 0.1, CondFrac: 0.3, CondBias: 0.9,
		DataKB: 64, HotDataKB: 16, HotDataFrac: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	inst := srv.Deploy(Workload{Name: "custom", Program: p})
	res := srv.Invoke(inst)
	if res.Instrs == 0 {
		t.Fatal("custom program ran nothing")
	}
}

func TestFacadePIFAttachment(t *testing.T) {
	srv := NewServer(ServerConfig{})
	pf := NewPIF(IdealPIFConfig(), srv)
	srv.AttachCorePrefetcher(pf)
	fn, _ := FunctionByName("ProdL-G")
	inst := srv.Deploy(fn)
	srv.RunLukewarm(inst, 1)
	if pf.Stats.Appends == 0 {
		t.Error("attached PIF saw no traffic")
	}
}

func TestFacadeTopDownAccessors(t *testing.T) {
	srv := NewServer(ServerConfig{})
	fn, _ := FunctionByName("Fib-G")
	res := srv.RunLukewarm(srv.Deploy(fn), 1)
	total := 0.0
	for _, c := range []TopDownCategory{Retiring, FetchLatency, FetchBandwidth, BadSpeculation, BackendBound} {
		total += res.Stack.CPIOf(c)
	}
	if diff := total - res.CPI(); diff > 0.001 || diff < -0.001 {
		t.Errorf("topdown categories (%.3f) do not sum to CPI (%.3f)", total, res.CPI())
	}
}

func TestFacadeExperimentWrappers(t *testing.T) {
	opt := ExperimentOptions{Functions: []string{"Auth-G"}, Warmup: 1, Measure: 1, Audit: true}
	if Table1().NumRows() == 0 || Table2().NumRows() != 20 {
		t.Error("static tables broken")
	}
	fp, err := Footprints(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out := fp.Fig6aTable().String(); !strings.Contains(out, "Auth-G") {
		t.Error("Footprints wrapper broken")
	}
	f8, err := Fig8(opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if out := f8.Table().String(); !strings.Contains(out, "Auth-G") {
		t.Error("Fig8 wrapper broken")
	}
	perf, err := PerformanceOn(opt, BroadwellConfig(), DefaultJukeboxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if perf.Platform != "Broadwell-like" {
		t.Errorf("PerformanceOn platform = %q", perf.Platform)
	}
}

func TestFacadeErrorHygiene(t *testing.T) {
	if _, err := NewServerErr(ServerConfig{ThrashBytesPerMs: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad server config: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewProgram(ProgramConfig{CodeKB: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad program config: err = %v, want ErrBadConfig", err)
	}
	if _, err := FunctionByName("Nope-X"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown function: err = %v, want ErrBadConfig", err)
	}
	srv := NewServer(ServerConfig{})
	if _, err := srv.ServeTraffic(TrafficConfig{MeanIATms: -5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad traffic config: err = %v, want ErrBadConfig", err)
	}
}

func TestFacadeFaultSurface(t *testing.T) {
	// 8 single-node kinds plus the 3 fleet kinds (node crash, instance
	// crash, dispatch flake).
	if n := len(FaultKinds()); n != 11 {
		t.Errorf("fault matrix has %d kinds", n)
	}
	plan := NewFaultPlan(3, FaultKinds()...)
	for _, k := range FaultKinds() {
		if !plan.Armed(k) {
			t.Errorf("kind %v not armed", k)
		}
	}
	srv := NewServer(ServerConfig{})
	fn, err := FunctionByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	res := srv.RunLukewarm(srv.Deploy(fn), 1)
	if err := AuditRun(res); err != nil {
		t.Errorf("clean run fails audit: %v", err)
	}
}

func TestFacadeChaosQuick(t *testing.T) {
	r, err := Chaos(ExperimentOptions{Functions: []string{"Auth-G"}}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Cells); got != len(FaultKinds()) {
		t.Fatalf("cells = %d, want %d", got, len(FaultKinds()))
	}
	if n := r.Failures(); n != 0 {
		t.Errorf("%d chaos cells failed:\n%s", n, r.Table())
	}
}

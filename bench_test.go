package lukewarm

import (
	"testing"

	"lukewarm/internal/workload"
)

// Each benchmark regenerates one figure or table of the paper (DESIGN.md
// maps them). They run on reduced options — a cross-language subset and few
// measured invocations — so the whole harness completes in minutes; the
// cmd/lukewarm binary runs the full-fidelity versions. Key reproduced
// quantities are attached as custom benchmark metrics.

// benchOpt is the reduced option set shared by the benchmarks.
var benchOpt = ExperimentOptions{
	Functions: []string{"Auth-G", "ProdL-G", "Email-P", "Pay-N", "AES-P"},
	Warmup:    1,
	Measure:   2,
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table1().NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table2().NumRows() != 20 {
			b.Fatal("wrong suite size")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	var saturated float64
	for i := 0; i < b.N; i++ {
		r, err := Fig1(ExperimentOptions{Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		saturated = r.Rows[len(r.Rows)-1].NormCPI["Auth-P"]
	}
	b.ReportMetric(saturated, "saturatedCPI%")
}

func BenchmarkFig2(b *testing.B) {
	var uplift float64
	for i := 0; i < b.N; i++ {
		r, err := Characterize(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		uplift = r.MeanUplift() * 100
		_ = r.Fig2Table()
	}
	b.ReportMetric(uplift, "CPIuplift%")
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Characterize(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Fig3Table()
	}
}

func BenchmarkFig4(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		r, err := Characterize(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		share = r.Fig4FetchLatencyShare() * 100
		_ = r.Fig4Table()
	}
	b.ReportMetric(share, "fetchLatShare%")
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Characterize(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Fig5aTable()
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Characterize(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Fig5bTable()
	}
}

func BenchmarkFig6a(b *testing.B) {
	var meanKB float64
	for i := 0; i < b.N; i++ {
		r, err := Footprints(ExperimentOptions{Functions: benchOpt.Functions}, 8)
		if err != nil {
			b.Fatal(err)
		}
		meanKB = r.MeanFootprintKB()
		_ = r.Fig6aTable()
	}
	b.ReportMetric(meanKB, "footprintKB")
}

func BenchmarkFig6b(b *testing.B) {
	var high float64
	for i := 0; i < b.N; i++ {
		r, err := Footprints(ExperimentOptions{Functions: benchOpt.Functions}, 8)
		if err != nil {
			b.Fatal(err)
		}
		high = float64(r.HighCommonalityCount())
		_ = r.Fig6bTable()
	}
	b.ReportMetric(high, "fns>=0.9")
}

func BenchmarkFig8(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := Fig8(ExperimentOptions{Functions: benchOpt.Functions, Measure: 1}, 16)
		if err != nil {
			b.Fatal(err)
		}
		best = float64(r.BestRegionSize())
		_ = r.Table()
	}
	b.ReportMetric(best, "bestRegionB")
}

func BenchmarkFig9(b *testing.B) {
	var g16 float64
	for i := 0; i < b.N; i++ {
		r, err := Fig9(ExperimentOptions{Functions: workload.Representatives(), Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		g16 = r.Rows[2].SpeedupPct["GEOMEAN"]
		_ = r.Table()
	}
	b.ReportMetric(g16, "speedup16KB%")
}

func BenchmarkFig10(b *testing.B) {
	var jb, pf float64
	for i := 0; i < b.N; i++ {
		r, err := Performance(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		jb, pf = r.GeomeanSpeedups()
		_ = r.Fig10Table()
	}
	b.ReportMetric(jb, "jukebox%")
	b.ReportMetric(pf, "perfectI$%")
}

func BenchmarkFig11(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		r, err := Performance(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		covered, _, _ := r.Rows[0].Coverage()
		cov = covered * 100
		_ = r.Fig11Table()
	}
	b.ReportMetric(cov, "coverage%")
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Performance(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Fig12Table()
	}
}

func BenchmarkFig13(b *testing.B) {
	var jb, ideal float64
	for i := 0; i < b.N; i++ {
		r, err := Fig13(ExperimentOptions{Functions: workload.Representatives(), Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		jb = r.SpeedupPct["JB"]["GEOMEAN"]
		ideal = r.SpeedupPct["PIF-ideal"]["GEOMEAN"]
		_ = r.Table()
	}
	b.ReportMetric(jb, "jukebox%")
	b.ReportMetric(ideal, "pifIdeal%")
}

func BenchmarkTable3(b *testing.B) {
	var bdw float64
	for i := 0; i < b.N; i++ {
		r, err := Table3(ExperimentOptions{Functions: []string{"Auth-G", "Email-P"}, Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		bdw = r.GeomeanSpeedupPct["Broadwell"]
		_ = r.Table()
	}
	b.ReportMetric(bdw, "broadwell%")
}

func BenchmarkAblationCRRB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := CRRBAblation(ExperimentOptions{Functions: []string{"Auth-G", "Email-P"}, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Table()
	}
}

func BenchmarkAblationCompaction(b *testing.B) {
	var virt float64
	for i := 0; i < b.N; i++ {
		r, err := Compaction(ExperimentOptions{Functions: []string{"Auth-G"}, Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		virt = r.Coverage["virtual"] * 100
		_ = r.Table()
	}
	b.ReportMetric(virt, "virtCoverage%")
}

func BenchmarkExtensionSnapshot(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		r, err := Snapshot(ExperimentOptions{Functions: []string{"Auth-G", "ProdL-G"}, Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		sp = r.FirstInvocationSpeedupPct
		_ = r.Table()
	}
	b.ReportMetric(sp, "firstInv%")
}

func BenchmarkExtensionBaselines(b *testing.B) {
	var recap float64
	for i := 0; i < b.N; i++ {
		r, err := Baselines(ExperimentOptions{Functions: []string{"Auth-G", "Email-P"}, Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		recap = r.BandwidthPct["RECAP"]
		_ = r.Table()
	}
	b.ReportMetric(recap, "recapBW%")
}

func BenchmarkExtensionServerSim(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := ServerSim(ExperimentOptions{Warmup: 1, Measure: 1,
			Functions: []string{"Auth-G", "Email-P", "Pay-N", "Geo-G", "Prof-G", "Curr-N", "RecO-P", "ProdL-G"}})
		if err != nil {
			b.Fatal(err)
		}
		gain = r.ThroughputGainPct
		_ = r.Table()
	}
	b.ReportMetric(gain, "throughput%")
}

func BenchmarkExtensionScaling(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := Scaling(ExperimentOptions{Warmup: 1, Measure: 1})
		if err != nil {
			b.Fatal(err)
		}
		gain = r.Rows[len(r.Rows)-1].JukeboxGainPct
		_ = r.Table()
	}
	b.ReportMetric(gain, "gain4core%")
}

// BenchmarkExtensionCluster measures the fault-tolerant fleet simulation:
// three nodes behind the retrying/hedging front end with all three fleet
// fault kinds armed.
func BenchmarkExtensionCluster(b *testing.B) {
	ws := make([]Workload, 0, 2)
	for _, name := range []string{"Auth-G", "Email-P"} {
		w, err := FunctionByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	tc := DefaultTrafficConfig()
	tc.MeanIATms = 50
	tc.InvocationsPerInstance = 6
	var avail float64
	for i := 0; i < b.N; i++ {
		cfg := FleetConfig{
			Nodes: 3, Workloads: ws, Traffic: tc,
			DeadlineMs: 400, RetryMax: 1, RetryBackoffMs: 2, HedgeDelayMinMs: 0.5,
			EjectAfter: 3, EjectMs: 60,
			Faults:            NewFaultPlan(7, FaultKinds()...),
			InstanceCrashProb: 0.1, DispatchFlakeProb: 0.2,
			NodeCrashMTBFms: 150, NodeDownMs: 40,
		}
		r, err := RunFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := AuditFleetResult(&r); err != nil {
			b.Fatal(err)
		}
		avail = r.Availability() * 100
	}
	b.ReportMetric(avail, "avail%")
}

// BenchmarkSimulationThroughput measures raw simulator speed: instructions
// simulated per wall-clock second for one lukewarm invocation.
func BenchmarkSimulationThroughput(b *testing.B) {
	fn, err := FunctionByName("Auth-G")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	inst := srv.Deploy(fn)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srv.RunLukewarm(inst, 1)
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

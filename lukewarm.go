// Package lukewarm is a full reproduction of "Lukewarm Serverless Functions:
// Characterization and Optimization" (Schall et al., ISCA 2022) as a
// self-contained Go library.
//
// The paper observes that warm serverless function instances, invoked
// seconds or minutes apart on highly consolidated hosts, find their
// microarchitectural state obliterated by interleaved executions — a
// "lukewarm" invocation that runs 31-114% slower than a truly warm one, with
// instruction-fetch latency the dominant cost. It proposes Jukebox, a
// record-and-replay instruction prefetcher that stores ~32 KB of
// spatio-temporal metadata per instance in main memory and bulk-prefetches
// the recorded working set into the L2 when the instance is rescheduled,
// recovering an average 18.7% of performance.
//
// This package is the facade over the simulation stack:
//
//   - NewServer builds a simulated host (core, cache hierarchy, MMU) and
//     deploys warm function instances with or without Jukebox.
//   - Suite and FunctionByName provide the paper's 20-workload evaluation
//     suite (Table 2), realized as calibrated synthetic programs.
//   - The Fig*/Table* functions regenerate every figure and table of the
//     paper's evaluation; see DESIGN.md for the per-experiment index and
//     EXPERIMENTS.md for paper-vs-measured results.
//
// # Quick start
//
//	srv := lukewarm.NewServer(lukewarm.ServerConfig{})
//	fn, _ := lukewarm.FunctionByName("Auth-G")
//	inst := srv.Deploy(fn)
//	warm := srv.RunReference(inst, 3)   // back-to-back: fully warm
//	luke := srv.RunLukewarm(inst, 3)    // state flushed between invocations
//	fmt.Printf("lukewarm penalty: %.0f%%\n", (luke.CPI()/warm.CPI()-1)*100)
//
// Attach Jukebox by setting ServerConfig.Jukebox to a configuration from
// DefaultJukeboxConfig. Everything is deterministic: the same program run
// twice produces identical cycle counts.
package lukewarm

import (
	"io"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/check"
	"lukewarm/internal/cluster"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/experiments"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/pif"
	"lukewarm/internal/predict"
	"lukewarm/internal/program"
	"lukewarm/internal/reap"
	"lukewarm/internal/runner"
	"lukewarm/internal/sched"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/topdown"
	"lukewarm/internal/trace"
	"lukewarm/internal/workload"
)

// Core simulation types, re-exported from the implementation packages.
type (
	// Server is a simulated serverless host: one core plus its co-resident
	// warm function instances.
	Server = serverless.Server
	// ServerConfig configures a Server (platform, Jukebox, thrash model).
	ServerConfig = serverless.Config
	// Instance is one warm, memory-resident function instance.
	Instance = serverless.Instance
	// RunResult is one invocation's timing outcome, including its Top-Down
	// cycle stack.
	RunResult = cpu.RunResult
	// CPUConfig describes a simulated platform (core + caches + MMU).
	CPUConfig = cpu.Config
	// Workload is one function of the evaluation suite.
	Workload = workload.Workload
	// JukeboxConfig parameterizes the Jukebox prefetcher.
	JukeboxConfig = core.Config
	// Jukebox is the record-and-replay instruction prefetcher — the
	// paper's contribution.
	Jukebox = core.Jukebox
	// PIFConfig parameterizes the PIF comparator prefetcher.
	PIFConfig = pif.Config
	// PIF is the Proactive Instruction Fetch baseline (Ferdman et al.).
	PIF = pif.PIF
	// ReapConfig parameterizes the REAP-style page-granular working-set
	// recorder and restore-time prefetcher (Ustiugov et al., ASPLOS'21).
	ReapConfig = reap.Config
	// Reap is one instance's working-set recorder/prefetcher.
	Reap = reap.Reap
	// ReapStats are the recorder/prefetcher counters AuditReap checks.
	ReapStats = reap.Stats
	// ReapManifest is a sealed page manifest — the REAP record file.
	ReapManifest = reap.Manifest
	// ProgramConfig describes a custom synthetic function program.
	ProgramConfig = program.Config
	// Program is a synthetic function program.
	Program = program.Program
	// TopDownStack is a Top-Down cycle decomposition.
	TopDownStack = topdown.Stack
	// ExperimentOptions scales experiment runs (warmup/measured invocations
	// and the function subset).
	ExperimentOptions = experiments.Options
	// CharacterizationResult backs Figures 2-5 (see Characterize).
	CharacterizationResult = experiments.CharacterizationResult
	// PerfResult backs Figures 10-12 (see Performance).
	PerfResult = experiments.PerfResult
	// Table is an aligned text table, the output format of experiments.
	Table = stats.Table
	// TopDownCategory is one Top-Down cycle class.
	TopDownCategory = topdown.Category
	// CacheStats are the per-cache counters (demand hits/misses by kind,
	// prefetch coverage accounting).
	CacheStats = mem.CacheStats
	// MemKind distinguishes instruction from data traffic.
	MemKind = mem.Kind
	// Cycle is a point in simulated time, in CPU clock cycles.
	Cycle = mem.Cycle
	// TrafficResult aggregates one ServeTraffic run.
	TrafficResult = serverless.TrafficResult
	// TrafficSummary is TrafficResult's flat, cacheable projection.
	TrafficSummary = serverless.TrafficSummary
	// Placer decides which core serves an invocation (see Sched).
	Placer = sched.Placer
	// KeepAlive decides instance eviction between invocations (see Sched).
	KeepAlive = sched.KeepAlive
	// HybridKeepAliveConfig parameterizes the hybrid-histogram keep-alive
	// policy (Shahrad et al., ATC'20).
	HybridKeepAliveConfig = sched.HybridConfig
	// SchedResult backs the scheduling-policy experiment (see Sched).
	SchedResult = experiments.SchedResult
	// FleetConfig configures a fault-tolerant multi-node fleet simulation
	// (see RunFleet).
	FleetConfig = cluster.Config
	// FleetResult aggregates one fleet simulation run.
	FleetResult = cluster.Result
	// FleetSummary is FleetResult's flat, cacheable projection.
	FleetSummary = cluster.Summary
	// FleetCounters is the request-conservation ledger AuditFleet checks.
	FleetCounters = faults.FleetCounters
	// ClusterResult backs the fleet sweep experiment (see Cluster).
	ClusterResult = experiments.ClusterResult
	// ColdstartResult backs the cold-start comparator sweep (see Coldstart).
	ColdstartResult = experiments.ColdstartResult
	// ColdstartMech names one warm-up mechanism of the cold-start sweep.
	ColdstartMech = experiments.ColdstartMech
	// PredictConfig arms predictive pre-warming on a traffic simulation
	// (TrafficConfig.Predict): forecaster, lead time, freshness window,
	// per-function mechanism choice and optional fleet budget.
	PredictConfig = predict.Config
	// Forecaster predicts a function's next inter-arrival gap; see
	// NewForecaster for the built-in implementations.
	Forecaster = predict.Forecaster
	// PrewarmLedger is the pre-warm conservation ledger (scheduled =
	// used + partial + wasted) that AuditPredict checks.
	PrewarmLedger = predict.Ledger
	// PrewarmBudget rate-limits pre-warms fleet-wide; see NewPrewarmBudget.
	PrewarmBudget = predict.Budget
	// PrewarmResult backs the predictive pre-warm sweep (see Prewarm).
	PrewarmResult = experiments.PrewarmResult
	// PrewarmRow is one (shape, forecaster, lead) cell of the sweep.
	PrewarmRow = experiments.PrewarmRow
	// FaultKind enumerates the injectable fault classes.
	FaultKind = faults.Kind
	// FaultPlan is one seeded fault-injection campaign.
	FaultPlan = faults.Plan
	// Engine executes experiment simulation cells on a worker pool with a
	// content-addressed result cache; share one via ExperimentOptions.Engine
	// to pool cached results and telemetry across experiments.
	Engine = runner.Engine
	// EngineConfig configures an Engine (worker count, on-disk cache
	// directory, progress stream).
	EngineConfig = runner.Config
	// EngineStats is a snapshot of an Engine's run telemetry.
	EngineStats = runner.Stats
)

// ErrBadConfig is the sentinel wrapped by every configuration-validation
// error in the library; test for it with errors.Is.
var ErrBadConfig = cfgerr.ErrBadConfig

// Top-Down categories (Yasin, ISPASS'14 level 1, with the level-2 front-end
// split the paper uses).
const (
	Retiring       = topdown.Retiring
	FetchLatency   = topdown.FetchLatency
	FetchBandwidth = topdown.FetchBandwidth
	BadSpeculation = topdown.BadSpeculation
	BackendBound   = topdown.BackendBound
)

// Memory traffic kinds.
const (
	InstrKind = mem.Instr
	DataKind  = mem.Data
)

// NewEngine builds an experiment execution engine. The zero EngineConfig
// selects GOMAXPROCS workers and an in-memory result cache; set CacheDir for
// a persistent on-disk tier and Progress for live per-cell progress lines.
func NewEngine(cfg EngineConfig) (*Engine, error) { return runner.New(cfg) }

// NewServer builds a simulated host. The zero ServerConfig selects the
// paper's Skylake-like platform with no prefetcher. Invalid configurations
// panic; use NewServerErr to get the error instead.
func NewServer(cfg ServerConfig) *Server { return serverless.New(cfg) }

// NewServerErr builds a simulated host, returning an error (wrapping
// ErrBadConfig) instead of panicking on an invalid configuration.
func NewServerErr(cfg ServerConfig) (*Server, error) { return serverless.NewErr(cfg) }

// Suite returns the paper's 20-function evaluation suite (Table 2) in
// figure order.
func Suite() []Workload { return workload.Suite() }

// FunctionNames lists the suite's function names in figure order.
func FunctionNames() []string { return workload.Names() }

// FunctionByName builds the named workload (e.g. "Auth-G", "Email-P").
func FunctionByName(name string) (Workload, error) { return workload.ByName(name) }

// NewProgram builds a custom synthetic function from cfg; deploy it by
// wrapping it in a Workload. Invalid configurations return an error wrapping
// ErrBadConfig.
func NewProgram(cfg ProgramConfig) (*Program, error) { return program.NewErr(cfg) }

// SkylakeConfig returns the paper's Table 1 simulation platform.
func SkylakeConfig() CPUConfig { return cpu.SkylakeConfig() }

// BroadwellConfig returns the Sec. 5.6 platform with a 256 KB L2.
func BroadwellConfig() CPUConfig { return cpu.BroadwellConfig() }

// CharacterizationConfig returns the Sec. 4.1 characterization host.
func CharacterizationConfig() CPUConfig { return cpu.CharacterizationConfig() }

// DefaultJukeboxConfig returns the paper's preferred Jukebox configuration:
// 1 KB regions, 16-entry CRRB, 16 KB metadata per direction.
func DefaultJukeboxConfig() JukeboxConfig { return core.DefaultConfig() }

// DefaultPIFConfig returns the published PIF configuration.
func DefaultPIFConfig() PIFConfig { return pif.DefaultConfig() }

// DefaultReapConfig returns the default REAP recorder/prefetcher
// configuration: record and restore enabled, cumulative manifests, 8192-page
// capacity. Attach it by setting ServerConfig.Reap.
func DefaultReapConfig() ReapConfig { return reap.DefaultConfig() }

// IdealPIFConfig returns PIF-ideal: unlimited, persistent metadata.
func IdealPIFConfig() PIFConfig { return pif.IdealConfig() }

// NewPIF builds a PIF attached to the server's hierarchy; install it with
// srv.AttachCorePrefetcher.
func NewPIF(cfg PIFConfig, srv *Server) *PIF { return pif.New(cfg, srv.Core.Hier) }

// Experiment runners: each regenerates one figure or table of the paper.
// They accept ExperimentOptions to scale warmup/measurement and restrict the
// function set (the zero value runs the full suite at a quick default).

// Fig1 regenerates Figure 1: CPI vs invocation inter-arrival time.
func Fig1(opt ExperimentOptions) (experiments.Fig1Result, error) { return experiments.Fig1(opt) }

// Characterize regenerates the data behind Figures 2-5: Top-Down stacks and
// MPKI breakdowns for reference vs interleaved execution.
func Characterize(opt ExperimentOptions) (experiments.CharacterizationResult, error) {
	return experiments.Characterize(opt)
}

// Footprints regenerates Figures 6a/6b: instruction footprints and their
// cross-invocation Jaccard commonality. invocations <= 0 selects the
// paper's 25 traced invocations per function.
func Footprints(opt ExperimentOptions, invocations int) (experiments.FootprintResult, error) {
	return experiments.Footprints(opt, invocations)
}

// Fig8 regenerates Figure 8: metadata size vs code-region size.
func Fig8(opt ExperimentOptions, crrbEntries int) (experiments.Fig8Result, error) {
	return experiments.Fig8(opt, crrbEntries)
}

// Fig9 regenerates Figure 9: speedup vs metadata budget.
func Fig9(opt ExperimentOptions) (experiments.Fig9Result, error) { return experiments.Fig9(opt) }

// Performance regenerates Figures 10-12: baseline vs Jukebox vs perfect
// I-cache, plus coverage and bandwidth overheads.
func Performance(opt ExperimentOptions) (experiments.PerfResult, error) {
	return experiments.Performance(opt, cpu.SkylakeConfig(), core.DefaultConfig())
}

// PerformanceOn runs the Figures 10-12 experiment on a specific platform and
// Jukebox configuration.
func PerformanceOn(opt ExperimentOptions, platform CPUConfig, jb JukeboxConfig) (experiments.PerfResult, error) {
	return experiments.Performance(opt, platform, jb)
}

// Fig13 regenerates Figure 13: Jukebox vs PIF and PIF-ideal.
func Fig13(opt ExperimentOptions) (experiments.Fig13Result, error) { return experiments.Fig13(opt) }

// Table1 renders the simulated processor parameters.
func Table1() *Table { return experiments.Table1() }

// Table2 renders the workload suite.
func Table2() *Table { return experiments.Table2() }

// Table3 regenerates Table 3: MPKI reductions on Skylake vs Broadwell.
func Table3(opt ExperimentOptions) (experiments.Table3Result, error) { return experiments.Table3(opt) }

// CRRBAblation runs the Sec. 5.1 CRRB-size sensitivity study.
func CRRBAblation(opt ExperimentOptions) (experiments.CRRBAblationResult, error) {
	return experiments.CRRBAblation(opt)
}

// Compaction runs the virtual-vs-physical metadata ablation (Sec. 3.3).
func Compaction(opt ExperimentOptions) (experiments.CompactionResult, error) {
	return experiments.Compaction(opt)
}

// Snapshot runs the snapshot/cold-boot replay extension (Sec. 3.4.2).
func Snapshot(opt ExperimentOptions) (experiments.SnapshotResult, error) {
	return experiments.Snapshot(opt)
}

// DynamicMetadata runs the per-function metadata sizing extension (Sec. 5.1).
func DynamicMetadata(opt ExperimentOptions) (experiments.DynamicMetadataResult, error) {
	return experiments.DynamicMetadata(opt)
}

// Baselines runs the Sec. 6 related-work comparison: Jukebox vs a next-line
// instruction prefetcher and a RECAP-style LLC context-restoration scheme.
func Baselines(opt ExperimentOptions) (experiments.BaselinesResult, error) {
	return experiments.Baselines(opt)
}

// ServerSim runs the system-level validation: the suite co-resident under
// Poisson invocation traffic, with natural interleaving, baseline vs
// Jukebox.
func ServerSim(opt ExperimentOptions) (experiments.ServerSimResult, error) {
	return experiments.ServerSim(opt)
}

// Scaling runs the multi-core extension: the suite under saturating traffic
// on 1, 2 and 4 cores sharing an LLC, baseline vs Jukebox.
func Scaling(opt ExperimentOptions) (experiments.ScalingResult, error) {
	return experiments.Scaling(opt)
}

// Sched runs the scheduling-policy experiment: placement policies
// (earliest-available, round-robin, sticky-affinity, Jukebox-aware) and
// keep-alive policies (fixed timeout, hybrid histogram, no eviction) swept
// against Poisson, heavy-tail and diurnal traffic over the co-resident
// suite.
func Sched(opt ExperimentOptions) (experiments.SchedResult, error) {
	return experiments.Sched(opt)
}

// RunFleet simulates a fault-tolerant fleet: identical nodes behind a
// retrying, hedging, health-checking front end with a graceful-degradation
// ladder, under a seeded fault plan injecting node crashes, instance
// crashes and dispatch flakes. Deterministic for a fixed configuration.
func RunFleet(cfg FleetConfig) (FleetResult, error) { return cluster.Run(cfg) }

// Cluster runs the fleet sweep experiment: node count x failure rate x
// fleet placement policy, reporting availability, warmth mix, tail latency
// and resilience overheads per cell.
func Cluster(opt ExperimentOptions) (experiments.ClusterResult, error) {
	return experiments.Cluster(opt)
}

// AuditFleetResult checks a fleet run against the request-conservation
// invariants (offered == served + shed + failed, retry and hedge ledgers
// balance, no request served by a down node) plus per-node traffic audits.
func AuditFleetResult(r *FleetResult) error { return cluster.Audit(r) }

// AuditFleet checks a raw fleet-counter ledger's conservation invariants.
func AuditFleet(c FleetCounters) error { return faults.AuditFleet(c) }

// AuditReap checks a REAP stats snapshot's conservation invariants
// (prefetched bytes bounded by manifest bytes, restored pages partition into
// used/wasted, no counter double-counts a page as both prefetched and
// demand-faulted).
func AuditReap(s ReapStats) error { return faults.AuditReap(s) }

// Coldstart runs the cold-start comparator: REAP page-granular
// record/prefetch vs Jukebox, PIF and the combined REAP+Jukebox stack across
// start conditions (true cold starts and a lukewarm IAT band), plus the
// manifest-staleness sweep.
func Coldstart(opt ExperimentOptions) (experiments.ColdstartResult, error) {
	return experiments.Coldstart(opt)
}

// Prewarm runs the predictive pre-warm sweep: forecaster x lead time x
// arrival shape under synchronous restore semantics, with a bare
// replay-at-dispatch baseline per shape and a fully warm reference closing
// the penalty scale. Oracle rows bound what prediction can ever recover; the
// bursty shape fills the wasted-replay ledger.
func Prewarm(opt ExperimentOptions) (experiments.PrewarmResult, error) {
	return experiments.Prewarm(opt)
}

// NewForecaster builds a fresh arrival forecaster by name — "histpeak"
// (log-scale IAT histogram mode), "ewma" (exponentially weighted next gap)
// or "oracle" (peeks at the true schedule; upper bound). Unknown names
// return nil.
func NewForecaster(name string) Forecaster { return predict.NewForecaster(name) }

// NewPrewarmBudget builds a shared pre-warm allowance: total caps scheduled
// pre-warms fleet-wide (0 = unlimited), refractoryMs is the minimum spacing
// between granted pre-warms of the same function anywhere in the fleet.
func NewPrewarmBudget(total int, refractoryMs float64) *PrewarmBudget {
	return predict.NewBudget(total, refractoryMs)
}

// AuditPredict checks a pre-warm ledger's conservation invariants; a
// non-empty forecaster name ("oracle") enables forecaster-specific checks.
func AuditPredict(l PrewarmLedger, forecaster string) error {
	return faults.AuditPredict(l, forecaster)
}

// Placement policies for TrafficConfig.Placer.

// EarliestAvailablePlacer dispatches to the core that frees up first — the
// historical default.
func EarliestAvailablePlacer() Placer { return sched.EarliestAvailable() }

// RoundRobinPlacer stripes invocations across cores in order.
func RoundRobinPlacer() Placer { return sched.RoundRobin() }

// StickyAffinityPlacer routes an invocation back to the core whose L1-I/L2/
// BTB state its function warmed most recently, unless more than patience
// foreign invocations have run there since (patience <= 0 selects the
// default).
func StickyAffinityPlacer(patience int) Placer { return sched.StickyAffinity(patience) }

// JukeboxAwarePlacer prefers the core the instance's Jukebox metadata is
// already bound to when it frees up within slackMs of the earliest core
// (slackMs <= 0 selects the default), minimizing Bind churn.
func JukeboxAwarePlacer(slackMs float64) Placer { return sched.JukeboxAware(slackMs) }

// Keep-alive policies for TrafficConfig.KeepAlive.

// FixedTimeoutKeepAlive evicts an instance idle longer than timeoutMs.
func FixedTimeoutKeepAlive(timeoutMs float64) KeepAlive { return sched.FixedTimeout(timeoutMs) }

// NoEvictKeepAlive never evicts.
func NoEvictKeepAlive() KeepAlive { return sched.NoEvict() }

// HybridKeepAlive learns a per-function inter-arrival histogram and derives
// a keep-alive head window plus a pre-warm point from it (Shahrad et al.,
// ATC'20). The zero config selects defaults.
func HybridKeepAlive(cfg HybridKeepAliveConfig) KeepAlive { return sched.HybridHistogram(cfg) }

// Chaos sweeps the fault-injection matrix (see NewFaultPlan) across the
// representative functions, classifying each (function, fault) cell as
// PASS, DEGRADED or FAIL. Cells that panic are caught and reported as FAIL.
func Chaos(opt ExperimentOptions, seed uint64) (experiments.ChaosResult, error) {
	return experiments.Chaos(opt, seed)
}

// FaultKinds lists every injectable fault kind in matrix order.
func FaultKinds() []FaultKind { return faults.Kinds() }

// NewFaultPlan builds a deterministic seeded fault-injection campaign with
// the given kinds armed. Apply it at the seams it targets (see the
// internal/faults package documentation).
func NewFaultPlan(seed uint64, kinds ...FaultKind) *FaultPlan {
	return faults.NewPlan(seed, kinds...)
}

// AuditRun checks one invocation result's conservation invariants (Top-Down
// stack sums to total cycles, no negative counters).
func AuditRun(r RunResult) error { return faults.Audit(r) }

// AuditTraffic checks a traffic run's aggregate invariants.
func AuditTraffic(r TrafficResult) error { return faults.AuditTraffic(r) }

// CheckReport is the outcome of the validation battery: differential oracles
// cross-checking the cache, BTB, TLB, and fetch pipeline against naive
// reference models, plus metamorphic invariants over whole runs.
type CheckReport = check.Report

// Check runs the full validation battery and returns its report. Render it
// with CheckReport.Table; CheckReport.Err is non-nil if any check failed.
// The `lukewarm check` subcommand wraps this.
func Check() *CheckReport { return check.Run() }

// TrafficConfig drives Server.ServeTraffic system-level simulations.
type TrafficConfig = serverless.TrafficConfig

// DefaultTrafficConfig returns a representative 1 s Poisson workload.
func DefaultTrafficConfig() TrafficConfig { return serverless.DefaultTrafficConfig() }

// Trace I/O: capture instruction streams to the compact binary format and
// replay them through the core (see cmd/tracecap for the CLI).
type (
	// TraceWriter serializes an instruction stream.
	TraceWriter = trace.Writer
	// TraceReader replays a serialized stream; it implements the core's
	// instruction-source interface.
	TraceReader = trace.Reader
)

// CaptureTrace writes invocation id of fn's program to w.
func CaptureTrace(fn Workload, id uint64, w io.Writer) (instructions uint64, err error) {
	return trace.Capture(fn.Program, id, w)
}

// NewTraceWriter starts a trace stream on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// NewTraceReader opens a trace stream for replay.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// ReadTrace decodes a whole serialized trace stream, rejecting malformed
// input with a typed error. maxInstrs bounds allocation; <= 0 selects a
// 16M-instruction default.
func ReadTrace(r io.Reader, maxInstrs uint64) ([]program.Instr, error) {
	return trace.Read(r, maxInstrs)
}

package lukewarm_test

import (
	"fmt"

	"lukewarm"
)

// The simulator is fully deterministic, so examples can assert exact
// outputs where the quantity is structural (metadata sizes, orderings)
// and qualitative relations where it is timing-derived.

// ExampleNewServer shows the minimal warm-vs-lukewarm comparison.
func ExampleNewServer() {
	srv := lukewarm.NewServer(lukewarm.ServerConfig{})
	fn, _ := lukewarm.FunctionByName("Auth-G")
	inst := srv.Deploy(fn)

	warm := srv.RunReference(inst, 3)
	luke := srv.RunLukewarm(inst, 3)
	fmt.Println("lukewarm slower:", luke.CPI() > warm.CPI()*1.25)
	// Output:
	// lukewarm slower: true
}

// ExampleServerConfig_jukebox deploys an instance with Jukebox and shows the
// per-instance metadata cost the paper headlines.
func ExampleServerConfig_jukebox() {
	jb := lukewarm.DefaultJukeboxConfig()
	srv := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &jb})
	fn, _ := lukewarm.FunctionByName("ProdL-G")
	inst := srv.Deploy(fn)
	srv.RunLukewarm(inst, 2)

	fmt.Printf("metadata per instance: %d KB\n", inst.Jukebox.MetadataFootprintBytes()/1024)
	fmt.Printf("for 1000 instances:    %d MB\n", 1000*inst.Jukebox.MetadataFootprintBytes()>>20)
	// Output:
	// metadata per instance: 32 KB
	// for 1000 instances:    31 MB
}

// ExampleSuite lists the evaluation suite's composition.
func ExampleSuite() {
	langs := map[string]int{}
	for _, w := range lukewarm.Suite() {
		langs[w.Lang.String()]++
	}
	fmt.Println("functions:", len(lukewarm.Suite()))
	fmt.Println("Python:", langs["Python"], "NodeJS:", langs["NodeJS"], "Go:", langs["Go"])
	// Output:
	// functions: 20
	// Python: 5 NodeJS: 5 Go: 10
}

// ExampleFig8 measures Jukebox's metadata requirement for one function and
// confirms the paper's 1 KB region-size optimum.
func ExampleFig8() {
	opt := lukewarm.ExperimentOptions{Functions: []string{"Email-P"}, Measure: 1}
	r, err := lukewarm.Fig8(opt, 16)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("best region size:", r.BestRegionSize(), "bytes")
	// Output:
	// best region size: 1024 bytes
}

// ExampleCaptureTrace round-trips an invocation through the binary trace
// format.
func ExampleCaptureTrace() {
	fn, _ := lukewarm.FunctionByName("Fib-G")
	var buf deterministicBuffer
	n, err := lukewarm.CaptureTrace(fn, 0, &buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r, _ := lukewarm.NewTraceReader(&buf)
	decoded := uint64(0)
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		decoded++
	}
	fmt.Println("round-trip exact:", decoded == n)
	// Output:
	// round-trip exact: true
}

// deterministicBuffer is a minimal in-memory io.ReadWriter.
type deterministicBuffer struct {
	data []byte
	pos  int
}

func (b *deterministicBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *deterministicBuffer) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}

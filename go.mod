module lukewarm

go 1.22
